"""Tiled right-looking Cholesky factorization (lower storage).

Mirrors Chameleon's ``dpotrf``: at iteration ``k``

* ``POTRF(k,k)`` factorizes the diagonal tile,
* ``TRSM`` solves the panel ``(i,k) ← (i,k)·L(k,k)⁻ᵀ`` for ``i > k``,
* ``SYRK(i,i) ← (i,i) − (i,k)·(i,k)ᵀ`` updates diagonal tiles,
* ``GEMM(i,j) ← (i,j) − (i,k)·(j,k)ᵀ`` for ``k < j < i`` updates the
  strictly-lower trailing tiles.

Only the lower triangle of the matrix is touched — a panel tile
``(i,k)`` is consumed by the whole *colrow* ``i`` of the trailing
matrix, which is where the symmetric communication savings come from
(Section III-B).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..distribution import TileDistribution
from ..runtime.graph import TaskGraph, TaskKind
from .kernels import (
    flops_gemm,
    flops_potrf,
    flops_syrk,
    flops_trsm,
    gemm_update,
    potrf,
    syrk_update,
    trsm_right_lower_trans,
)
from .lu import MessageLog, _Logger
from .tiles import TiledMatrix

__all__ = ["build_cholesky_graph", "execute_cholesky", "cholesky_task_count"]


def cholesky_task_count(n: int) -> int:
    """Number of tasks of the tiled Cholesky on ``n × n`` tiles (closed form).

    ``n`` POTRF + ``n(n-1)/2`` TRSM + ``n(n-1)/2`` SYRK +
    ``Σ_k C(n-1-k, 2) = C(n, 3)`` GEMM.
    """
    return n + n * (n - 1) + n * (n - 1) * (n - 2) // 6


def build_cholesky_graph(
    dist: TileDistribution, tile_size: int
) -> Tuple[TaskGraph, np.ndarray]:
    """Build the Cholesky task graph for a symmetric distribution.

    As in :func:`repro.dla.lu.build_lu_graph`, each iteration is emitted
    as two array batches — the panel (POTRF + TRSMs) and the trailing
    update (SYRK/GEMM interleaved i-major, matching the reference
    builder's ``for i: SYRK(i,i); for j<i: GEMM(i,j)`` order).  Every
    lower-triangle tile touched at iteration ``k`` moves from version
    ``k`` to ``k + 1``; panel reads reference ``((i,k), k+1)``.
    """
    if not dist.symmetric:
        raise ValueError("Cholesky requires a symmetric distribution")
    n = dist.n_tiles
    own_flat = dist.owners.astype(np.int64).reshape(-1)
    graph = TaskGraph(n_data=n * n, nnodes=dist.nnodes)
    b = tile_size
    f_potrf, f_trsm, f_syrk, f_gemm = (
        flops_potrf(b),
        flops_trsm(b),
        flops_syrk(b),
        flops_gemm(b),
    )

    for k in range(n):
        dk = k * n + k
        t = n - k - 1
        r = np.arange(k + 1, n, dtype=np.int64)

        # panel batch: POTRF(k,k), TRSM(i,k) for i > k
        pi = np.concatenate(([k], r))
        pdata = pi * n + k
        pkind = np.concatenate(
            ([TaskKind.POTRF], np.full(t, TaskKind.TRSM, dtype=np.int64)))
        pflops = np.concatenate(([f_potrf], np.full(t, f_trsm)))
        rdata = np.concatenate(
            ([dk], np.stack([pdata[1:], np.full(t, dk, dtype=np.int64)],
                            axis=1).ravel()))
        rver = np.concatenate(([k], np.tile([k, k + 1], t)))
        rcounts = np.concatenate(([1], np.full(t, 2, dtype=np.int64)))
        graph.append_batch(
            kind=pkind, i=pi, j=np.full(t + 1, k, dtype=np.int64), k=k,
            node=own_flat[pdata], flops=pflops, read_data=rdata,
            read_version=rver, read_counts=rcounts, write_data=pdata)

        # trailing-update batch: for each i > k, SYRK(i,i) then
        # GEMM(i,j) for k < j < i — flattened with a within-group index
        # w so that w == 0 is the SYRK and w >= 1 is GEMM at j = k + w
        if t:
            cnt = np.arange(1, t + 1, dtype=np.int64)
            total = t * (t + 1) // 2
            i_col = np.repeat(r, cnt)
            offsets = np.cumsum(cnt) - cnt
            w = np.arange(total, dtype=np.int64) - np.repeat(offsets, cnt)
            is_syrk = w == 0
            j_col = np.where(is_syrk, i_col, k + w)
            ud = i_col * n + j_col
            ukind = np.where(is_syrk, np.int64(TaskKind.SYRK),
                             np.int64(TaskKind.GEMM))
            uflops = np.where(is_syrk, f_syrk, f_gemm)
            rcounts = np.where(is_syrk, 2, 3).astype(np.int64)
            pos = np.cumsum(rcounts) - rcounts
            nreads = 3 * total - t
            rdata = np.empty(nreads, dtype=np.int64)
            rver = np.empty(nreads, dtype=np.int64)
            rdata[pos] = ud
            rver[pos] = k
            rdata[pos + 1] = i_col * n + k
            rver[pos + 1] = k + 1
            gpos = pos[~is_syrk] + 2
            rdata[gpos] = j_col[~is_syrk] * n + k
            rver[gpos] = k + 1
            graph.append_batch(
                kind=ukind, i=i_col, j=j_col, k=k, node=own_flat[ud],
                flops=uflops, read_data=rdata, read_version=rver,
                read_counts=rcounts, write_data=ud)
    # data_home: lower-triangle owners; mirrored entries for safety
    data_home = own_flat.copy()
    return graph, data_home


def execute_cholesky(
    matrix: TiledMatrix, dist: Optional[TileDistribution] = None,
    log_messages: bool = False,
) -> Optional[MessageLog]:
    """Run the tiled Cholesky numerically, in place (lower triangle).

    After the call the lower triangle of the matrix holds ``L`` with
    ``A = L·Lᵀ``; the strictly-upper triangle is left untouched except
    for diagonal tiles (zeroed above their diagonal by POTRF).  With a
    distribution, inter-node tile messages are logged as in
    :func:`repro.dla.lu.execute_lu` (``log_messages=True`` keeps the
    full transfer list).
    """
    n = matrix.n_tiles
    log = _Logger(dist, keep_messages=log_messages) if dist is not None else None
    for k in range(n):
        diag = matrix.tile(k, k)
        potrf(diag)
        if log:
            log.produce(k, k)
        for i in range(k + 1, n):
            if log:
                log.consume(k, k, by=(i, k))
            trsm_right_lower_trans(matrix.tile(i, k), diag)
            if log:
                log.produce(i, k)
        for i in range(k + 1, n):
            if log:
                log.consume(i, k, by=(i, i))
            syrk_update(matrix.tile(i, i), matrix.tile(i, k))
            if log:
                log.produce(i, i)
            for j in range(k + 1, i):
                if log:
                    log.consume(i, k, by=(i, j))
                    log.consume(j, k, by=(i, j))
                gemm_update(matrix.tile(i, j), matrix.tile(i, k), matrix.tile(j, k),
                            transpose_b=True)
                if log:
                    log.produce(i, j)
    return log.result() if log else None
