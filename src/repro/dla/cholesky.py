"""Tiled right-looking Cholesky factorization (lower storage).

Mirrors Chameleon's ``dpotrf``: at iteration ``k``

* ``POTRF(k,k)`` factorizes the diagonal tile,
* ``TRSM`` solves the panel ``(i,k) ← (i,k)·L(k,k)⁻ᵀ`` for ``i > k``,
* ``SYRK(i,i) ← (i,i) − (i,k)·(i,k)ᵀ`` updates diagonal tiles,
* ``GEMM(i,j) ← (i,j) − (i,k)·(j,k)ᵀ`` for ``k < j < i`` updates the
  strictly-lower trailing tiles.

Only the lower triangle of the matrix is touched — a panel tile
``(i,k)`` is consumed by the whole *colrow* ``i`` of the trailing
matrix, which is where the symmetric communication savings come from
(Section III-B).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..distribution import TileDistribution
from ..runtime.graph import TaskGraph, TaskKind
from .kernels import (
    flops_gemm,
    flops_potrf,
    flops_syrk,
    flops_trsm,
    gemm_update,
    potrf,
    syrk_update,
    trsm_right_lower_trans,
)
from .lu import MessageLog, _Logger
from .tiles import TiledMatrix

__all__ = ["build_cholesky_graph", "execute_cholesky", "cholesky_task_count"]


def cholesky_task_count(n: int) -> int:
    """Number of tasks of the tiled Cholesky on ``n × n`` tiles."""
    # n potrf + sum(n-1-k) trsm + sum(n-1-k) syrk + sum C(n-1-k, 2) gemm
    total = n
    for k in range(n):
        t = n - 1 - k
        total += 2 * t + t * (t - 1) // 2
    return total


def build_cholesky_graph(
    dist: TileDistribution, tile_size: int
) -> Tuple[TaskGraph, np.ndarray]:
    """Build the Cholesky task graph for a symmetric distribution."""
    if not dist.symmetric:
        raise ValueError("Cholesky requires a symmetric distribution")
    n = dist.n_tiles
    own = dist.owners
    graph = TaskGraph(n_data=n * n, nnodes=dist.nnodes)
    b = tile_size
    f_potrf, f_trsm, f_syrk, f_gemm = (
        flops_potrf(b),
        flops_trsm(b),
        flops_syrk(b),
        flops_gemm(b),
    )

    def d(i: int, j: int) -> int:
        return i * n + j

    for k in range(n):
        dk = d(k, k)
        graph.submit(TaskKind.POTRF, k, k, k, int(own[k, k]), f_potrf,
                     (graph.current(dk),), dk)
        diag_ref = graph.current(dk)
        for i in range(k + 1, n):
            dik = d(i, k)
            graph.submit(TaskKind.TRSM, i, k, k, int(own[i, k]), f_trsm,
                         (graph.current(dik), diag_ref), dik)
        panel_refs = {i: graph.current(d(i, k)) for i in range(k + 1, n)}
        for i in range(k + 1, n):
            dii = d(i, i)
            graph.submit(TaskKind.SYRK, i, i, k, int(own[i, i]), f_syrk,
                         (graph.current(dii), panel_refs[i]), dii)
            for j in range(k + 1, i):
                dij = d(i, j)
                graph.submit(TaskKind.GEMM, i, j, k, int(own[i, j]), f_gemm,
                             (graph.current(dij), panel_refs[i], panel_refs[j]), dij)
    # data_home: lower-triangle owners; mirrored entries for safety
    data_home = own.reshape(-1).astype(np.int64)
    return graph, data_home


def execute_cholesky(
    matrix: TiledMatrix, dist: Optional[TileDistribution] = None,
    log_messages: bool = False,
) -> Optional[MessageLog]:
    """Run the tiled Cholesky numerically, in place (lower triangle).

    After the call the lower triangle of the matrix holds ``L`` with
    ``A = L·Lᵀ``; the strictly-upper triangle is left untouched except
    for diagonal tiles (zeroed above their diagonal by POTRF).  With a
    distribution, inter-node tile messages are logged as in
    :func:`repro.dla.lu.execute_lu` (``log_messages=True`` keeps the
    full transfer list).
    """
    n = matrix.n_tiles
    log = _Logger(dist, keep_messages=log_messages) if dist is not None else None
    for k in range(n):
        diag = matrix.tile(k, k)
        potrf(diag)
        if log:
            log.produce(k, k)
        for i in range(k + 1, n):
            if log:
                log.consume(k, k, by=(i, k))
            trsm_right_lower_trans(matrix.tile(i, k), diag)
            if log:
                log.produce(i, k)
        for i in range(k + 1, n):
            if log:
                log.consume(i, k, by=(i, i))
            syrk_update(matrix.tile(i, i), matrix.tile(i, k))
            if log:
                log.produce(i, i)
            for j in range(k + 1, i):
                if log:
                    log.consume(i, k, by=(i, j))
                    log.consume(j, k, by=(i, j))
                gemm_update(matrix.tile(i, j), matrix.tile(i, k), matrix.tile(j, k),
                            transpose_b=True)
                if log:
                    log.produce(i, j)
    return log.result() if log else None
