"""Tiled matrix multiplication ``C ← C + A·B`` under a 2D distribution.

Matrix multiplication is where the communication lower bounds of
Section II-A originate (Hong & Kung [9], Irony et al. [10]): with the
owner-computes rule on a pattern ``G``,

* input tile ``A(i, l)`` is needed by every owner of row ``i`` of
  ``C`` — ``x_i`` distinct nodes,
* input tile ``B(l, j)`` by every owner of column ``j`` — ``y_j``,

so the total volume is ``Q_GEMM = n·k·(x̄ + ȳ − 2) = n·k·(T(G) − 2)``
(for ``C`` of ``n×n`` tiles, inner dimension ``k`` tiles).  With the
square 2DBC pattern this is ``2·n·k·(√P − 1)`` — the classical
per-node ``≈ 2m²/√P`` that Irony et al. prove asymptotically optimal,
a fact the test-suite checks against :mod:`repro.cost.bounds`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..distribution import TileDistribution
from ..patterns.base import Pattern
from ..runtime.graph import TaskGraph, TaskKind
from .kernels import flops_gemm
from .lu import MessageLog
from .tiles import TiledMatrix

__all__ = ["q_gemm", "build_gemm_graph", "execute_gemm", "gemm_task_count"]


def q_gemm(pattern: Pattern, n_tiles: int, k_tiles: int) -> float:
    """Closed-form GEMM volume: ``n·k·(x̄ + ȳ − 2)`` tiles sent."""
    return n_tiles * k_tiles * (pattern.mean_row_count + pattern.mean_col_count - 2.0)


def gemm_task_count(n: int, k: int) -> int:
    return n * n * k


def build_gemm_graph(
    dist: TileDistribution, tile_size: int, k_tiles: int
) -> Tuple[TaskGraph, np.ndarray]:
    """Build the GEMM task graph.

    ``C`` tiles get data ids ``0..n²-1``; ``A`` tiles
    ``n² .. n²+n·k-1`` (A(i,l) at ``n² + l·n + i``); ``B`` tiles follow
    (B(l,j) at ``n² + n·k + l·n + j``).  Inputs are distributed by the
    same pattern: ``A(i,l)`` with the owner of pattern cell
    ``(i mod r, l mod c)``, ``B(l,j)`` with ``(l mod r, j mod c)`` —
    the ScaLAPACK co-location that makes the closed form exact.
    """
    if dist.symmetric:
        raise ValueError("GEMM uses a full (non-symmetric) distribution")
    n = dist.n_tiles
    own = dist.owners
    grid = dist.pattern.grid
    r, c = dist.pattern.shape
    graph = TaskGraph(n_data=n * n + 2 * n * k_tiles, nnodes=dist.nnodes)
    f = flops_gemm(tile_size)

    def dC(i: int, j: int) -> int:
        return i * n + j

    def dA(i: int, l: int) -> int:
        return n * n + l * n + i

    def dB(l: int, j: int) -> int:
        return n * n + n * k_tiles + l * n + j

    for l in range(k_tiles):
        for i in range(n):
            for j in range(n):
                graph.submit(
                    TaskKind.GEMM, i, j, l, int(own[i, j]), f,
                    (graph.current(dC(i, j)), graph.current(dA(i, l)),
                     graph.current(dB(l, j))),
                    dC(i, j),
                )

    home = np.empty(graph.n_data, dtype=np.int64)
    home[: n * n] = own.reshape(-1)
    for l in range(k_tiles):
        for i in range(n):
            home[dA(i, l)] = grid[i % r, l % c]
        for j in range(n):
            home[dB(l, j)] = grid[l % r, j % c]
    return graph, home


def execute_gemm(
    c: TiledMatrix,
    a: np.ndarray,
    b: np.ndarray,
    tile_size: int,
    dist: Optional[TileDistribution] = None,
) -> Optional[MessageLog]:
    """Run ``C ← C + A·B`` numerically, optionally logging messages."""
    n, ts = c.n_tiles, tile_size
    if a.shape != (n * ts, a.shape[1]) or a.shape[1] != b.shape[0] or \
            b.shape[1] != n * ts or a.shape[1] % ts:
        raise ValueError(f"incompatible shapes C={c.data.shape}, A={a.shape}, B={b.shape}")
    k = a.shape[1] // ts

    grid = dist.pattern.grid if dist is not None else None
    n_messages = 0
    per_node = np.zeros(dist.nnodes if dist else 0, dtype=np.int64)
    holders: dict = {}

    def home_of(kind: str, x: int, l: int) -> int:
        r, cc = dist.pattern.shape
        if kind == "A":
            return int(grid[x % r, l % cc])
        return int(grid[l % r, x % cc])

    def consume(kind: str, x: int, l: int, node: int) -> None:
        nonlocal n_messages
        key = (kind, x, l)
        held = holders.setdefault(key, {home_of(kind, x, l)})
        if node not in held:
            n_messages += 1
            per_node[home_of(kind, x, l)] += 1
            held.add(node)

    for l in range(k):
        for i in range(n):
            for j in range(n):
                if dist is not None:
                    node = dist.owner(i, j)
                    consume("A", i, l, node)
                    consume("B", j, l, node)
                c.tile(i, j)[...] += (
                    a[i * ts : (i + 1) * ts, l * ts : (l + 1) * ts]
                    @ b[l * ts : (l + 1) * ts, j * ts : (j + 1) * ts]
                )
    if dist is None:
        return None
    return MessageLog(n_messages=n_messages, per_node_sent=per_node)
