"""Tiled matrix storage and test-matrix generators."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["TiledMatrix", "random_matrix", "diagonally_dominant", "spd_matrix"]


class TiledMatrix:
    """A square matrix viewed as an ``n × n`` grid of ``b × b`` tiles.

    Tiles are views into one contiguous array, so kernels mutate the
    matrix in place — exactly the storage model of Chameleon.
    """

    def __init__(self, data: np.ndarray, tile_size: int):
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ValueError(f"need a square matrix, got shape {data.shape}")
        if data.shape[0] % tile_size:
            raise ValueError(
                f"matrix size {data.shape[0]} is not a multiple of tile size {tile_size}"
            )
        self.data = data
        self.tile_size = int(tile_size)
        self.n_tiles = data.shape[0] // tile_size

    @classmethod
    def zeros(cls, n_tiles: int, tile_size: int) -> "TiledMatrix":
        return cls(np.zeros((n_tiles * tile_size,) * 2), tile_size)

    def tile(self, i: int, j: int) -> np.ndarray:
        """Writable view of tile ``(i, j)``."""
        b = self.tile_size
        return self.data[i * b : (i + 1) * b, j * b : (j + 1) * b]

    def data_id(self, i: int, j: int) -> int:
        """Integer datum id of tile ``(i, j)`` for task graphs."""
        return i * self.n_tiles + j

    def tile_coords(self, data_id: int) -> tuple[int, int]:
        return divmod(data_id, self.n_tiles)

    def copy(self) -> "TiledMatrix":
        return TiledMatrix(self.data.copy(), self.tile_size)

    @property
    def size(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        return f"TiledMatrix({self.n_tiles}x{self.n_tiles} tiles of {self.tile_size})"


def random_matrix(n_tiles: int, tile_size: int, seed: Optional[int] = None) -> TiledMatrix:
    """Uniform random matrix (paper: "randomly generated matrices")."""
    rng = np.random.default_rng(seed)
    n = n_tiles * tile_size
    return TiledMatrix(rng.uniform(-1.0, 1.0, (n, n)), tile_size)


def diagonally_dominant(n_tiles: int, tile_size: int, seed: Optional[int] = None) -> TiledMatrix:
    """Random matrix made strictly diagonally dominant.

    LU without pivoting (the tiled GETRF of :mod:`repro.dla.lu`) is
    numerically stable on such matrices, mirroring the common
    benchmarking practice for no-pivoting tiled LU.
    """
    mat = random_matrix(n_tiles, tile_size, seed)
    n = mat.size
    mat.data[np.diag_indices(n)] += np.abs(mat.data).sum(axis=1) + 1.0
    return mat


def spd_matrix(n_tiles: int, tile_size: int, seed: Optional[int] = None) -> TiledMatrix:
    """Symmetric positive-definite matrix for Cholesky."""
    rng = np.random.default_rng(seed)
    n = n_tiles * tile_size
    a = rng.uniform(-1.0, 1.0, (n, n))
    sym = (a + a.T) / 2.0
    sym[np.diag_indices(n)] += n  # strong diagonal shift => SPD
    return TiledMatrix(sym, tile_size)
