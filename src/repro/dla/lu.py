"""Tiled right-looking LU factorization (no pivoting).

Mirrors Chameleon's ``dgetrf_nopiv``: at iteration ``k``

* ``GETRF(k,k)`` factorizes the diagonal tile,
* ``TRSM`` solves the column panel ``(i,k) ← (i,k)·U(k,k)⁻¹`` and the
  row panel ``(k,j) ← L(k,k)⁻¹·(k,j)``,
* ``GEMM(i,j) ← (i,j) − (i,k)·(k,j)`` updates the trailing matrix.

Two consumers of the same builder:

* :func:`build_lu_graph` → a :class:`~repro.runtime.graph.TaskGraph`
  for the event-driven simulator;
* :func:`execute_lu` → the actual numeric factorization (optionally
  logging inter-node tile messages when given a distribution), used to
  validate both the algorithm and the communication model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..distribution import TileDistribution
from ..runtime.graph import TaskGraph, TaskKind
from .kernels import (
    flops_gemm,
    flops_getrf,
    flops_trsm,
    gemm_update,
    getrf_nopiv,
    trsm_left_lower_unit,
    trsm_right_upper,
)
from .tiles import TiledMatrix

__all__ = ["build_lu_graph", "execute_lu", "lu_task_count", "MessageLog"]


@dataclass
class MessageLog:
    """Inter-node tile transfers recorded by a distributed execution.

    ``messages`` (kept only on request) lists every transfer as
    ``(src, dst, i, j)`` — the tile-for-tile record the differential
    conformance tests compare against the analytic counts of
    :mod:`repro.cost.exact`.
    """

    n_messages: int
    per_node_sent: np.ndarray
    per_node_recv: Optional[np.ndarray] = None
    messages: Optional[list] = None

    def __repr__(self) -> str:
        return f"MessageLog(n_messages={self.n_messages})"


def lu_task_count(n: int) -> int:
    """Number of tasks of the tiled LU on ``n × n`` tiles (closed form).

    ``n`` GETRF + ``n(n-1)`` TRSM + ``Σ_k (n-1-k)² = n(n-1)(2n-1)/6``
    GEMM.
    """
    return n + n * (n - 1) + n * (n - 1) * (2 * n - 1) // 6


def build_lu_graph(
    dist: TileDistribution, tile_size: int
) -> Tuple[TaskGraph, np.ndarray]:
    """Build the LU task graph for a distribution.

    Returns the graph and ``data_home`` (initial owner of every tile).

    The graph is emitted iteration by iteration as whole-panel /
    whole-trailing-update array batches (two ``append_batch`` calls per
    ``k``, no per-tile ``submit``), producing exactly the task sequence
    of the per-tile reference builder
    (:func:`repro.runtime.objgraph.build_lu_graph_reference`): tile
    ``(i, j)`` is written once per iteration ``k ≤ min(i, j)``, so at
    iteration ``k`` every touched tile moves from version ``k`` to
    ``k + 1``.
    """
    if dist.symmetric:
        raise ValueError("LU requires a non-symmetric distribution")
    n = dist.n_tiles
    own_flat = dist.owners.astype(np.int64).reshape(-1)
    graph = TaskGraph(n_data=n * n, nnodes=dist.nnodes)
    b = tile_size
    f_getrf, f_trsm, f_gemm = flops_getrf(b), flops_trsm(b), flops_gemm(b)

    for k in range(n):
        dk = k * n + k
        t = n - k - 1
        r = np.arange(k + 1, n, dtype=np.int64)
        kf = np.full(t, k, dtype=np.int64)

        # panel batch: GETRF(k,k), column TRSM(i,k), row TRSM(k,j)
        pi = np.concatenate(([k], r, kf))
        pj = np.concatenate(([k], kf, r))
        pdata = pi * n + pj
        pkind = np.concatenate(
            ([TaskKind.GETRF], np.full(2 * t, TaskKind.TRSM, dtype=np.int64)))
        pflops = np.concatenate(([f_getrf], np.full(2 * t, f_trsm)))
        # reads: GETRF reads (dk, k); each TRSM reads its tile at k and
        # the freshly factorized diagonal at k+1
        rdata = np.concatenate(
            ([dk], np.stack([pdata[1:], np.full(2 * t, dk, dtype=np.int64)],
                            axis=1).ravel()))
        rver = np.concatenate(([k], np.tile([k, k + 1], 2 * t)))
        rcounts = np.concatenate(([1], np.full(2 * t, 2, dtype=np.int64)))
        graph.append_batch(
            kind=pkind, i=pi, j=pj, k=k, node=own_flat[pdata], flops=pflops,
            read_data=rdata, read_version=rver, read_counts=rcounts,
            write_data=pdata)

        # trailing-update batch: GEMM(i,j) for i, j > k, i-major like the
        # reference double loop
        if t:
            gi = np.repeat(r, t)
            gj = np.tile(r, t)
            gd = gi * n + gj
            rdata = np.stack([gd, gi * n + k, k * n + gj], axis=1).ravel()
            rver = np.tile([k, k + 1, k + 1], t * t)
            graph.append_batch(
                kind=TaskKind.GEMM, i=gi, j=gj, k=k, node=own_flat[gd],
                flops=f_gemm, read_data=rdata, read_version=rver,
                read_counts=np.full(t * t, 3, dtype=np.int64), write_data=gd)
    data_home = own_flat.copy()
    return graph, data_home


def execute_lu(
    matrix: TiledMatrix, dist: Optional[TileDistribution] = None,
    log_messages: bool = False,
) -> Optional[MessageLog]:
    """Run the tiled LU numerically, in place.

    Without a distribution this is a plain sequential tiled LU.  With
    one, the execution additionally simulates the StarPU data cache:
    each produced tile version is "sent" once to every remote node that
    reads it, and the resulting message counts are returned.  The
    numeric result is identical either way.  ``log_messages=True``
    additionally keeps the full ``(src, dst, i, j)`` transfer list.
    """
    n = matrix.n_tiles
    log = _Logger(dist, keep_messages=log_messages) if dist is not None else None
    for k in range(n):
        diag = matrix.tile(k, k)
        getrf_nopiv(diag)
        if log:
            log.produce(k, k)
        for i in range(k + 1, n):
            if log:
                log.consume(k, k, by=(i, k))
            trsm_right_upper(matrix.tile(i, k), diag)
            if log:
                log.produce(i, k)
        for j in range(k + 1, n):
            if log:
                log.consume(k, k, by=(k, j))
            trsm_left_lower_unit(matrix.tile(k, j), diag)
            if log:
                log.produce(k, j)
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                if log:
                    log.consume(i, k, by=(i, j))
                    log.consume(k, j, by=(i, j))
                gemm_update(matrix.tile(i, j), matrix.tile(i, k), matrix.tile(k, j))
                if log:
                    log.produce(i, j)
    return log.result() if log else None


class _Logger:
    """Tracks which nodes hold the current version of each tile."""

    def __init__(self, dist: TileDistribution, keep_messages: bool = False):
        self.dist = dist
        self.n_messages = 0
        self.per_node = np.zeros(dist.nnodes, dtype=np.int64)
        self.per_node_recv = np.zeros(dist.nnodes, dtype=np.int64)
        self.messages: Optional[list] = [] if keep_messages else None
        # holders of the *current* version of each tile; producing a new
        # version invalidates all remote copies (StarPU write-invalidate)
        self.holders: dict[tuple[int, int], set[int]] = {}

    def _owner(self, i: int, j: int) -> int:
        return self.dist.owner(i, j)

    def produce(self, i: int, j: int) -> None:
        self.holders[(i, j)] = {self._owner(i, j)}

    def consume(self, i: int, j: int, by: tuple[int, int]) -> None:
        node = self._owner(*by)
        held = self.holders.setdefault((i, j), {self._owner(i, j)})
        if node not in held:
            src = self._owner(i, j)
            self.n_messages += 1
            self.per_node[src] += 1
            self.per_node_recv[node] += 1
            if self.messages is not None:
                self.messages.append((src, node, i, j))
            held.add(node)

    def result(self) -> MessageLog:
        return MessageLog(n_messages=self.n_messages, per_node_sent=self.per_node,
                          per_node_recv=self.per_node_recv, messages=self.messages)
