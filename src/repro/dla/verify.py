"""Numerical verification of the tiled factorizations."""

from __future__ import annotations

import numpy as np

from .tiles import TiledMatrix

__all__ = ["lu_residual", "cholesky_residual", "split_lu", "extract_lower"]


def split_lu(factored: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split an in-place LU result into (unit-lower L, upper U)."""
    L = np.tril(factored, -1) + np.eye(factored.shape[0])
    U = np.triu(factored)
    return L, U


def extract_lower(factored: np.ndarray) -> np.ndarray:
    """Lower-triangular Cholesky factor from an in-place result."""
    return np.tril(factored)


def lu_residual(original: TiledMatrix, factored: TiledMatrix) -> float:
    """Relative reconstruction error ``‖L·U − A‖_F / ‖A‖_F``."""
    L, U = split_lu(factored.data)
    A = original.data
    return float(np.linalg.norm(L @ U - A) / np.linalg.norm(A))


def cholesky_residual(original: TiledMatrix, factored: TiledMatrix) -> float:
    """Relative reconstruction error ``‖L·Lᵀ − A‖_F / ‖A‖_F``."""
    L = extract_lower(factored.data)
    A = original.data
    return float(np.linalg.norm(L @ L.T - A) / np.linalg.norm(A))
