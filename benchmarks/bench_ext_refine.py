"""Extension (open question §VI): local-search refinement of GCR&M.

Quantifies how much a cheap single-cell-move descent improves raw
GCR&M patterns, and whether search + refine beats a bigger raw search
budget at equal cost.
"""

import pytest

from repro.experiments.figures import FigureResult
from repro.patterns.gcrm import feasible_sizes, gcrm, gcrm_search
from repro.patterns.refine import refine_symmetric
from repro.patterns.sbc import sbc


@pytest.mark.benchmark(group="ext-refine")
def test_refine_gcrm(benchmark, save_result):
    def run():
        rows = []
        for P in (23, 31, 39):
            raw = gcrm_search(P, seeds=range(15), max_factor=4.0)
            ref = refine_symmetric(raw.pattern)
            # per-seed statistics on a mid-size pattern
            r = feasible_sizes(P, max_factor=3.0)[-1]
            gains = []
            for s in range(15):
                res = gcrm(P, r, seed=s)
                gains.append(refine_symmetric(res.pattern).improvement)
            rows.append({
                "P": P,
                "search_cost": raw.cost,
                "search+refine": ref.cost,
                "mean_gain_raw": sum(gains) / len(gains),
                "max_gain_raw": max(gains),
            })
        return FigureResult("Extension", "GCR&M + local-search refinement", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_refine")

    for row in result.rows:
        assert row["search+refine"] <= row["search_cost"] + 1e-12
        assert row["max_gain_raw"] >= 0.0


@pytest.mark.benchmark(group="ext-refine")
def test_refine_preserves_sbc_optimality(benchmark):
    """SBC patterns are local optima of the move neighbourhood."""

    def run():
        return [refine_symmetric(sbc(P)).moves for P in (21, 28, 32, 36)]

    moves = benchmark.pedantic(run, rounds=1, iterations=1)
    assert moves == [0, 0, 0, 0]
