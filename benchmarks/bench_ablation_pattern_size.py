"""Ablation (paper "perspectives"): pattern size vs communication
efficiency trade-off, and the effect of the search budget.

The conclusion asks "how large a pattern needs to be to obtain good
communication efficiency".  We sweep the GCR&M size cap and the seed
budget for a few P and report the best cost each budget achieves.
"""

import math

import pytest

from repro.experiments.figures import FigureResult
from repro.patterns.gcrm import feasible_sizes, gcrm, gcrm_search


@pytest.mark.benchmark(group="ablation")
def test_ablation_size_cap(benchmark, save_result):
    """Best cost as a function of the allowed pattern-size factor."""

    def run():
        rows = []
        for P in (23, 31, 39):
            for factor in (1.5, 2.0, 3.0, 4.0, 6.0):
                try:
                    res = gcrm_search(P, seeds=range(10), max_factor=factor)
                    cost = res.cost
                    r = res.pattern.nrows
                except ValueError:
                    cost, r = float("nan"), 0
                rows.append({"P": P, "max_factor": factor, "best_cost": cost,
                             "best_r": r, "ref_sqrt_2P": math.sqrt(2 * P)})
        return FigureResult("Ablation A", "GCR&M cost vs pattern-size budget", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ablation_pattern_size")

    for P in (23, 31, 39):
        series = [r["best_cost"] for r in result.rows if r["P"] == P
                  and not math.isnan(r["best_cost"])]
        # enlarging the budget never hurts (search keeps the best)
        assert all(series[i + 1] <= series[i] + 1e-9 for i in range(len(series) - 1))


@pytest.mark.benchmark(group="ablation")
def test_ablation_seed_budget(benchmark, save_result):
    """Best cost as a function of the number of random seeds (Fig 9's
    message: randomness matters, so budget buys quality)."""

    def run():
        rows = []
        P = 23
        sizes = feasible_sizes(P, max_factor=4.0)
        for budget in (1, 5, 25):
            best = min(gcrm(P, r, seed=s).cost for r in sizes for s in range(budget))
            rows.append({"P": P, "seeds": budget, "best_cost": best})
        return FigureResult("Ablation B", "GCR&M cost vs seed budget (P=23)", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ablation_seed_budget")

    costs = [r["best_cost"] for r in result.rows]
    assert costs == sorted(costs, reverse=True) or costs[-1] <= costs[0]


@pytest.mark.benchmark(group="ablation")
def test_ablation_tie_break(benchmark, save_result):
    """Which phase-1 tie-break ingredient matters (Figure 8/9 context)?

    'usage_random' is the paper's policy; 'random' drops the
    lowest-usage filter; 'first' removes randomness entirely.
    """
    from repro.patterns.gcrm import TIE_BREAKS

    def run():
        rows = []
        P = 23
        sizes = [r for r in feasible_sizes(P, max_factor=4.0)]
        for policy in TIE_BREAKS:
            best = min(gcrm(P, r, seed=s, tie_break=policy).cost
                       for r in sizes for s in range(10))
            rows.append({"policy": policy, "best_cost": best})
        return FigureResult("Ablation C", "GCR&M tie-break policy (P=23)", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ablation_tie_break")

    by = {r["policy"]: r["best_cost"] for r in result.rows}
    # randomized policies explore more and should not lose to 'first'
    assert by["usage_random"] <= by["first"] + 1e-9
    assert by["random"] <= by["first"] + 1e-9
