"""Extension (Section II-A related work): the 2D ↔ 2.5D ↔ 3D continuum.

Places the paper's 2D patterns on the replication trade-off curves of
Irony et al. and Solomonik-Demmel: how much communication replication
could still remove, at what memory price — context for why the paper's
*memory-neutral* improvements (G-2DBC, GCR&M) matter in practice.
"""

import math

import pytest

from repro.cost.replication import (
    max_useful_replication,
    memory_per_node,
    replication_tradeoff,
)
from repro.cost.metrics import q_lu
from repro.experiments.figures import FigureResult
from repro.patterns.g2dbc import g2dbc


@pytest.mark.benchmark(group="ext-replication")
def test_replication_tradeoff_curves(benchmark, save_result):
    m, P = 100_000, 64

    def run():
        rows = []
        for kernel in ("gemm", "lu"):
            for row in replication_tradeoff(m, P, kernel,
                                            factors=[1.0, 2.0, 4.0]):
                row = dict(row)
                row["kernel"] = kernel
                rows.append(row)
        return FigureResult("Extension", f"2.5D replication trade-off "
                            f"(m={m}, P={P})", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_replication")

    for kernel in ("gemm", "lu"):
        series = [r for r in result.rows if r["kernel"] == kernel]
        # doubling memory buys a 1/sqrt(2) volume cut, exactly
        assert series[1]["volume_vs_2d"] == pytest.approx(1 / math.sqrt(2))
        assert series[2]["volume_vs_2d"] == pytest.approx(0.5)


@pytest.mark.benchmark(group="ext-replication")
def test_g2dbc_vs_replication(benchmark, save_result):
    """How the paper's memory-neutral gain compares to buying memory:
    for P=23, G-2DBC already cuts 2DBC-23x1 volume by ~2.5x at c=1 —
    more than 2.5D replication with 6x the memory would cut from a
    square 2DBC."""
    P, n = 23, 200

    def run():
        from repro.patterns.bc2d import bc2d

        good = q_lu(g2dbc(P), n)
        bad = q_lu(bc2d(23, 1), n)
        rows = [{
            "what": "G-2DBC vs 23x1 (c=1, same memory)",
            "volume_ratio": good / bad,
            "memory_ratio": 1.0,
        }]
        for c in (2.0, max_useful_replication(P)):
            rows.append({
                "what": f"2.5D c={c:.2f} vs c=1",
                "volume_ratio": 1 / math.sqrt(c),
                "memory_ratio": c,
            })
        return FigureResult("Extension", "pattern quality vs replication", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_g2dbc_vs_replication")

    pattern_gain = result.rows[0]["volume_ratio"]
    best_replication_gain = result.rows[-1]["volume_ratio"]
    assert pattern_gain < best_replication_gain  # bigger cut, no memory cost
