"""Figure 11 — Cholesky using at most P = 31 nodes.

Paper shape: GCR&M on all 31 nodes delivers higher total GFlop/s than
the SBC 8×8 baseline on 28 nodes (paper: up to 11 % at the largest
size), with slightly lower per-node efficiency.
"""

import pytest

from repro.experiments.figures import fig11_cholesky_p31

SIZES = (32, 48, 64)


@pytest.mark.benchmark(group="fig11")
def test_fig11_cholesky_p31(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig11_cholesky_p31(n_tiles_list=SIZES, seeds=range(15)),
        rounds=1,
        iterations=1,
    )
    save_result(result, "fig11_cholesky_p31")

    last = SIZES[-1]
    total = {r["label"]: r["gflops"] for r in result.rows if r["n_tiles"] == last}
    per_node = {r["label"]: r["gflops_per_node"] for r in result.rows if r["n_tiles"] == last}
    assert total["GCR&M (P=31)"] > total["SBC 8x8 (P=28)"]
    # per node, SBC (fewer nodes, cheaper pattern) is at least comparable
    assert per_node["SBC 8x8 (P=28)"] >= 0.95 * per_node["GCR&M (P=31)"]
