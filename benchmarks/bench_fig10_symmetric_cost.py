"""Figure 10 — symmetric cost T of all pattern families over P.

Paper shapes: SBC points sit on the √(2P) − 0.5 / √(2P) curves; GCR&M
matches or beats SBC for many P and never (meaningfully) crosses the
empirical √(3P/2) floor; (G-)2DBC pay ~√2 more.
"""

import math

import pytest

from repro.experiments.figures import fig10_symmetric_cost

P_RANGE = range(6, 61)


@pytest.mark.benchmark(group="fig10")
def test_fig10_symmetric_cost(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig10_symmetric_cost(P_RANGE, seeds=range(12), max_factor=4.0),
        rounds=1,
        iterations=1,
    )
    save_result(result, "fig10_symmetric_cost")

    sbc_rows = [r for r in result.rows if not math.isnan(r["sbc"])]
    assert len(sbc_rows) >= 8
    for r in sbc_rows:
        # GCR&M similar to or better than SBC where SBC exists
        assert r["gcrm"] <= r["sbc"] + 1.0, r["P"]

    for r in result.rows:
        # nothing meaningfully below the floor
        assert r["gcrm"] >= r["floor_sqrt_3P_2"] - 1.0, r["P"]
        # symmetric-aware design beats G-2DBC's colrow cost for large P
        if r["P"] >= 20:
            assert r["gcrm"] < r["g2dbc_sym"], r["P"]

    # GCR&M on average clearly below the basic-SBC growth curve
    diffs = [r["gcrm"] - r["sqrt_2P"] for r in result.rows if r["P"] >= 15]
    assert sum(diffs) / len(diffs) < 0.5
