"""Figure 12 — Cholesky using at most P = 35 nodes.

Paper shape: the GCR&M pattern on 35 nodes has a *lower* communication
cost than the SBC 8×8 on 32 nodes (7.4 vs 8) and uses more nodes, so
it wins on total throughput at every size.
"""

import pytest

from repro.experiments.figures import fig12_cholesky_p35

SIZES = (32, 48, 64)


@pytest.mark.benchmark(group="fig12")
def test_fig12_cholesky_p35(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig12_cholesky_p35(n_tiles_list=SIZES, seeds=range(15)),
        rounds=1,
        iterations=1,
    )
    save_result(result, "fig12_cholesky_p35")

    gcrm_cost = next(r["pattern_cost"] for r in result.rows if "GCR&M" in r["label"])
    assert gcrm_cost <= 8.0  # paper: 7.4 vs SBC's 8

    for n in SIZES:
        total = {r["label"]: r["gflops"] for r in result.rows if r["n_tiles"] == n}
        if n == SIZES[0]:
            # at the smallest size the two are statistically tied in the
            # simulation (the paper's gap is also smallest at small m)
            assert total["GCR&M (P=35)"] >= 0.97 * total["SBC 8x8 (P=32)"], n
        else:
            assert total["GCR&M (P=35)"] > total["SBC 8x8 (P=32)"], n
