"""Table Ia — dimensions and costs of the LU evaluation patterns.

Checks the paper's printed values (2DBC column exactly; G-2DBC column
from the paper's own closed form — the P=23 entry 9.261 is treated as
an erratum, see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.figures import table1a_lu_patterns


@pytest.mark.benchmark(group="table1a")
def test_table1a(benchmark, save_result):
    result = benchmark.pedantic(table1a_lu_patterns, rounds=1, iterations=1)
    save_result(result, "table1a_lu_patterns")

    by_p = {r["P"]: r for r in result.rows}
    # 2DBC column (paper values; the Rx1 entries print r+c = P+1 here)
    assert by_p[16]["2dbc_dim"] == "4x4" and by_p[16]["2dbc_T"] == 8
    assert by_p[20]["2dbc_dim"] == "5x4" and by_p[20]["2dbc_T"] == 9
    assert by_p[21]["2dbc_dim"] == "7x3" and by_p[21]["2dbc_T"] == 10
    assert by_p[22]["2dbc_dim"] == "11x2" and by_p[22]["2dbc_T"] == 13
    assert by_p[30]["2dbc_dim"] == "6x5" and by_p[30]["2dbc_T"] == 11
    assert by_p[35]["2dbc_dim"] == "7x5" and by_p[35]["2dbc_T"] == 12
    assert by_p[36]["2dbc_dim"] == "6x6" and by_p[36]["2dbc_T"] == 12
    assert by_p[39]["2dbc_dim"] == "13x3" and by_p[39]["2dbc_T"] == 16
    # G-2DBC column
    assert by_p[23]["g2dbc_dim"] == "20x23"
    assert by_p[31]["g2dbc_dim"] == "30x31"
    assert by_p[31]["g2dbc_T"] == pytest.approx(11.194, abs=5e-4)
    assert by_p[35]["g2dbc_dim"] == "30x35"
    assert by_p[35]["g2dbc_T"] == pytest.approx(11.857, abs=5e-4)
    assert by_p[39]["g2dbc_dim"] == "30x39"
    assert by_p[39]["g2dbc_T"] == pytest.approx(12.615, abs=5e-4)
