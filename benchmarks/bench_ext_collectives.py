"""Extension (Section II-C remark): what would collectives buy?

Chameleon sends each tile as a point-to-point message; the paper notes
this makes message count proportional to volume.  This ablation reruns
Figure 5's LU cases with an idealized binomial-tree broadcast to bound
how much of 2DBC 23x1's deficit is *serialization* (fixable by
collectives) vs *volume* (fixable only by a better pattern).
"""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.harness import run_factorization
from repro.experiments.machine import sim_cluster
from repro.patterns.bc2d import bc2d
from repro.patterns.g2dbc import g2dbc

import dataclasses


@pytest.mark.benchmark(group="ext-collectives")
def test_collectives_ablation(benchmark, save_result):
    n_tiles = 48

    def run():
        rows = []
        for label, pat in (("G-2DBC (P=23)", g2dbc(23)),
                           ("2DBC 23x1", bc2d(23, 1)),
                           ("2DBC 7x3 (P=21)", bc2d(7, 3))):
            for mode in ("p2p", "tree"):
                cl = dataclasses.replace(sim_cluster(pat.nnodes), multicast=mode)
                tr = run_factorization(pat, n_tiles, "lu", cluster=cl)
                rows.append({"pattern": label, "multicast": mode,
                             "gflops": tr.gflops, "makespan_s": tr.makespan,
                             "n_messages": tr.n_messages})
        return FigureResult("Extension", "p2p vs idealized tree broadcast (LU, 48 tiles)", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_collectives")

    def gf(pattern, mode):
        return next(r["gflops"] for r in result.rows
                    if r["pattern"] == pattern and r["multicast"] == mode)

    # collectives help every pattern (or at worst do nothing)
    for pat in ("G-2DBC (P=23)", "2DBC 23x1", "2DBC 7x3 (P=21)"):
        assert gf(pat, "tree") >= gf(pat, "p2p") * 0.999, pat
    # the bad pattern benefits the most (its deficit is partly serialization)
    gain_bad = gf("2DBC 23x1", "tree") / gf("2DBC 23x1", "p2p")
    gain_good = gf("G-2DBC (P=23)", "tree") / gf("G-2DBC (P=23)", "p2p")
    assert gain_bad >= gain_good - 0.02
    # but even ideal collectives don't close the volume gap entirely:
    # G-2DBC with p2p still beats 23x1 with tree or stays within 5%
    assert gf("G-2DBC (P=23)", "p2p") >= 0.95 * gf("2DBC 23x1", "tree")
