"""Extension (Section II-C): intra-node scheduling policy ablation.

The paper credits the task-based model's dynamic scheduling for part of
its performance.  This ablation quantifies the claim on the simulator:
panel-aware ordering ("priority", StarPU-like) vs the natural
submission order ("fifo") vs the adversarial newest-first ("lifo").
"""

import dataclasses

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.harness import run_factorization
from repro.experiments.machine import sim_cluster
from repro.patterns.g2dbc import g2dbc

POLICIES = ("priority", "fifo", "lifo")


@pytest.mark.benchmark(group="ext-scheduler")
def test_scheduler_ablation(benchmark, save_result):
    n_tiles = 48
    P = 23

    def run():
        rows = []
        pat = g2dbc(P)
        for policy in POLICIES:
            cl = dataclasses.replace(sim_cluster(P), scheduler=policy)
            tr = run_factorization(pat, n_tiles, "lu", cluster=cl)
            rows.append({"policy": policy, "gflops": tr.gflops,
                         "makespan_s": tr.makespan, "utilization": tr.utilization})
        return FigureResult("Extension", f"LU scheduler policies (G-2DBC, P={P}, "
                            f"{n_tiles} tiles)", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_scheduler")

    by = {r["policy"]: r["makespan_s"] for r in result.rows}
    # LIFO inverts the panel-first order and should not win
    assert by["lifo"] >= min(by["priority"], by["fifo"]) * 0.999
    # priority and fifo are close (submission order is already panel-first)
    assert by["priority"] == pytest.approx(by["fifo"], rel=0.25)
