"""Extension (Section II-C): intra-node scheduling policy ablation.

The paper credits the task-based model's dynamic scheduling for part of
its performance.  This ablation quantifies the claim on the simulator,
now over *every* policy in the scheduler registry
(`repro.runtime.schedulers`) — the legacy trio plus critical-path
lookahead, comm-avoidance and work stealing — and scores each run
against the policy-universal lower bounds of
`repro.cost.schedule_lower_bounds` (the `optimality_ratio` column:
makespan over the best bound, 1.0 = provably unbeatable).
"""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.harness import run_factorization
from repro.patterns.g2dbc import g2dbc
from repro.runtime.schedulers import registered_schedulers

POLICIES = registered_schedulers()


@pytest.mark.benchmark(group="ext-scheduler")
def test_scheduler_ablation(benchmark, save_result):
    n_tiles = 48
    P = 23

    def run():
        rows = []
        pat = g2dbc(P)
        for policy in POLICIES:
            tr = run_factorization(pat, n_tiles, "lu", scheduler=policy,
                                   attach_bounds=True)
            rows.append({"policy": policy, "gflops": tr.gflops,
                         "makespan_s": tr.makespan,
                         "utilization": tr.utilization,
                         "optimality_ratio": tr.optimality_ratio})
        return FigureResult("Extension", f"LU scheduler policies (G-2DBC, P={P}, "
                            f"{n_tiles} tiles)", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_scheduler")

    by = {r["policy"]: r["makespan_s"] for r in result.rows}
    # LIFO inverts the panel-first order and should not win
    assert by["lifo"] >= min(by["priority"], by["fifo"]) * 0.999
    # priority and fifo are close (submission order is already panel-first)
    assert by["priority"] == pytest.approx(by["fifo"], rel=0.25)
    # every makespan respects the lower bound: ratios are ≥ 1
    for r in result.rows:
        assert r["optimality_ratio"] >= 1.0 - 1e-9
