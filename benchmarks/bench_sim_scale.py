"""Million-task simulation benchmark — batch loop, backends, streaming.

Sweeps the simulator over m ∈ {64, 128, 256} tiles (LU at P = 12 for
the speedup ladder, Cholesky for the streaming-trace leg) and records
wall-clock plus peak RSS in ``benchmarks/results/sim_batch_speedup.txt``:

* **legacy**   — the frozen pre-refactor object stack
  (:mod:`repro.runtime.objgraph` + :mod:`repro.runtime.objsim`), the
  end-to-end ≥10× denominator, run live at m = 128;
* **python**   — the batch-drained pure-Python event loop
  (``REPRO_SIM_BACKEND=python``);
* **compiled** — the auto-selected accelerated backend (numba when
  installed, else the on-demand-compiled C loop) over the shared
  :mod:`~repro.runtime.simplan` plan.

Every pairing is asserted schedule-identical (canonical-trace equality
at m = 64, makespan/message equality above) — the speedup is never
bought with drift.  The m = 256 leg streams a Chrome trace through
:class:`~repro.runtime.tracefmt.ChromeTraceWriter` and asserts the
writer flushed incrementally (bounded recording memory).

``REPRO_BENCH_FAST=1`` runs a CI-sized subset (m = 128, no legacy
stack, no m = 256 leg) and gates on the compiled-vs-python ratio
degrading more than 20% against the recorded baseline — a ratio of
in-process measurements, so the gate is host-independent.
"""

import json
import os
import resource
import tempfile
import time

import pytest

from repro.distribution import TileDistribution
from repro.dla.cholesky import build_cholesky_graph, cholesky_task_count
from repro.dla.lu import build_lu_graph, lu_task_count
from repro.patterns.g2dbc import g2dbc
from repro.runtime import backends
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simulator import simulate
from repro.runtime.tracefmt import ChromeTraceWriter

from conftest import RESULTS_DIR

P = 12
TILE = 8
FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")
SIZES = (128,) if FAST else (64, 128, 256)

#: compiled-vs-python speedup recorded on the reference host at m=128;
#: the fast-mode CI gate fails when the live ratio drops below 80% of
#: this (update together with the results file)
RECORDED_BACKEND_RATIO = 18.3
#: minimum accepted end-to-end speedup vs the legacy stack at m=128
MIN_E2E_SPEEDUP = 10.0


def _cluster() -> ClusterSpec:
    return ClusterSpec(nnodes=P, cores_per_node=2, core_gflops=1.0,
                       bandwidth_Bps=1e9, latency_s=1e-6, tile_size=TILE)


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _with_backend(name):
    """Context: pin ``REPRO_SIM_BACKEND`` and re-resolve the cache."""
    class _Ctx:
        def __enter__(self):
            self.prev = os.environ.get(backends.BACKEND_ENV)
            os.environ[backends.BACKEND_ENV] = name
            return self

        def __exit__(self, *exc):
            if self.prev is None:
                os.environ.pop(backends.BACKEND_ENV, None)
            else:
                os.environ[backends.BACKEND_ENV] = self.prev
    return _Ctx()


def _time_sim(graph, home, cluster, rounds=2):
    best = float("inf")
    trace = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        trace = simulate(graph, cluster, data_home=home, network="nic")
        best = min(best, time.perf_counter() - t0)
    return best, trace


@pytest.mark.benchmark(group="sim_scale")
def test_sim_batch_speedup(benchmark):
    cluster = _cluster()
    auto_name = backends.active_backend()
    rows = []
    ratio_m128 = None
    e2e_m128 = None
    legacy_note = "skipped (REPRO_BENCH_FAST)"

    for m in SIZES:
        dist = TileDistribution(g2dbc(P), m, symmetric=False)
        t0 = time.perf_counter()
        graph, home = build_lu_graph(dist, TILE)
        graph.columns  # finalize: build time includes concatenation
        build_t = time.perf_counter() - t0

        auto_t, auto_tr = benchmark.pedantic(
            lambda g=graph, h=home: _time_sim(g, h, cluster),
            rounds=1, iterations=1) if m == max(SIZES) else \
            _time_sim(graph, home, cluster)
        with _with_backend("python"):
            py_t, py_tr = _time_sim(
                graph, home, cluster, rounds=1 if m >= 128 else 2)

        # identical schedules across backends
        assert py_tr.makespan == auto_tr.makespan
        assert py_tr.n_messages == auto_tr.n_messages
        if m == 64:
            assert (json.dumps(py_tr.to_canonical(), sort_keys=True)
                    == json.dumps(auto_tr.to_canonical(), sort_keys=True))

        ratio = py_t / auto_t
        if m == 128:
            ratio_m128 = ratio
            if not FAST:
                from repro.runtime.objgraph import build_lu_graph_reference
                from repro.runtime.objsim import simulate_reference

                t0 = time.perf_counter()
                lgraph, lhome = build_lu_graph_reference(dist, TILE)
                lb = time.perf_counter() - t0
                t0 = time.perf_counter()
                ltr = simulate_reference(lgraph, cluster, data_home=lhome,
                                         network="nic")
                ls = time.perf_counter() - t0
                assert ltr.makespan == auto_tr.makespan
                assert ltr.n_messages == auto_tr.n_messages
                e2e_m128 = (lb + ls) / (build_t + auto_t)
                legacy_note = (f"{lb + ls:.2f}s (build {lb:.2f}s + "
                               f"sim {ls:.2f}s)")
        rows.append((m, lu_task_count(m), build_t, auto_t, py_t, ratio,
                     _rss_mb()))

    # ------------------------------------------------------------------
    # m = 256 Cholesky under a streaming Chrome trace (bounded memory)
    # ------------------------------------------------------------------
    stream_lines = ["", "streaming trace leg: skipped (REPRO_BENCH_FAST)"]
    if not FAST:
        from repro.patterns.gcrm import feasible_sizes, gcrm

        m = 256
        chol_pat = gcrm(P, feasible_sizes(P)[0], seed=0).pattern
        t0 = time.perf_counter()
        graph, home = build_cholesky_graph(
            TileDistribution(chol_pat, m, symmetric=True), TILE)
        graph.columns
        build_t = time.perf_counter() - t0
        rss_before = _rss_mb()
        path = os.path.join(tempfile.mkdtemp(prefix="simtrace-"), "m256.json")
        t0 = time.perf_counter()
        with ChromeTraceWriter(path, graph=None, buffer_events=8192) as w:
            simulate(graph, cluster, data_home=home, network="nic",
                     trace_writer=w)
        stream_t = time.perf_counter() - t0
        rss_after = _rss_mb()
        assert w.flushes > 1, "trace writer never flushed incrementally"
        size_mb = os.path.getsize(path) / 1e6
        os.unlink(path)
        stream_lines = [
            "",
            f"streaming trace leg — Cholesky m=256 "
            f"({cholesky_task_count(m)} tasks), ChromeTraceWriter "
            f"buffer=8192:",
            f"  build {build_t:.2f}s, simulate+stream {stream_t:.2f}s, "
            f"{w.events_written} events in {w.flushes} flushes, "
            f"{size_mb:.1f} MB on disk",
            f"  peak RSS {rss_before:.0f} -> {rss_after:.0f} MB "
            f"(recording memory bounded by the writer buffer)",
        ]

    # gates ------------------------------------------------------------
    if auto_name != "python":
        floor = 0.8 * RECORDED_BACKEND_RATIO
        assert ratio_m128 >= floor, (
            f"compiled-vs-python ratio {ratio_m128:.2f}x at m=128 dropped "
            f"below 80% of the recorded {RECORDED_BACKEND_RATIO}x")
    if e2e_m128 is not None:
        assert e2e_m128 >= MIN_E2E_SPEEDUP, (
            f"end-to-end m=128 speedup {e2e_m128:.2f}x below "
            f"{MIN_E2E_SPEEDUP}x")

    lines = [
        f"Million-task simulation benchmark — LU, P={P}, network=nic, "
        f"tile={TILE}",
        f"host: {os.cpu_count()} CPU(s); active backend: {auto_name}",
        "python = batch-drained pure-Python loop; compiled = "
        "numba/C backend over the shared plan.",
        "All pairings schedule-identical (canonical equality pinned "
        "at m=64).",
        "",
        f"{'m':>4} {'tasks':>9} {'build':>8} {'compiled':>9} "
        f"{'python':>8} {'ratio':>7} {'peakRSS':>9}",
    ]
    for m, ntasks, bt, at, pt, ratio, rss in rows:
        lines.append(
            f"{m:>4} {ntasks:>9} {bt:>7.2f}s {at:>8.3f}s "
            f"{pt:>7.2f}s {ratio:>6.2f}x {rss:>7.0f}MB")
    lines += [
        "",
        f"legacy object stack at m=128: {legacy_note}",
        f"end-to-end speedup vs legacy at m=128 (build+sim): "
        + (f"{e2e_m128:.2f}x (gate: >= {MIN_E2E_SPEEDUP:.0f}x)"
           if e2e_m128 is not None else "skipped (REPRO_BENCH_FAST)"),
        f"compiled-vs-python ratio at m=128: {ratio_m128:.2f}x "
        f"(fast-mode gate: >= 80% of recorded {RECORDED_BACKEND_RATIO}x)",
    ] + stream_lines
    text = "\n".join(lines)
    if not FAST:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "sim_batch_speedup.txt").write_text(text + "\n")
    print()
    print(text)
