"""Extension (Sections I / II-A): the SYRK symmetric kernel.

SBC was introduced for SYRK and Cholesky alike; this bench verifies the
same pattern story on SYRK: symmetric patterns (SBC, GCR&M) send ~√2
fewer tiles than a square 2DBC of comparable node count, and Eq.-style
closed forms track the exact counts.
"""

import pytest

from repro.distribution import TileDistribution
from repro.dla.syrk import build_syrk_graph, q_syrk
from repro.experiments.figures import FigureResult
from repro.experiments.machine import sim_cluster
from repro.patterns.bc2d import bc2d
from repro.patterns.gcrm import gcrm_search
from repro.patterns.sbc import sbc
from repro.runtime.simulator import simulate


@pytest.mark.benchmark(group="ext-syrk")
def test_syrk_distributions(benchmark, save_result):
    n, k, tile = 36, 12, 500

    def run():
        rows = []
        pats = {
            "2DBC 6x6 (P=36)": bc2d(6, 6),
            "SBC 9x9 (P=36)": sbc(36),
            "GCR&M (P=35)": gcrm_search(35, seeds=range(10), max_factor=3.0).pattern,
        }
        for label, pat in pats.items():
            dist = TileDistribution(pat, n, symmetric=True)
            graph, home, _ = build_syrk_graph(dist, tile, k_tiles=k)
            tr = simulate(graph, sim_cluster(pat.nnodes, tile_size=tile), data_home=home)
            rows.append({
                "pattern": label,
                "T_chol": pat.cost_cholesky,
                "q_syrk_pred": q_syrk(pat, n, k),
                "n_messages": tr.n_messages,
                "gflops": tr.gflops,
                "makespan_s": tr.makespan,
            })
        return FigureResult("Extension", f"SYRK C-=A.A^T, C {n}x{n} tiles, A {n}x{k}", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_syrk")

    by = {r["pattern"]: r for r in result.rows}
    # symmetric patterns send fewer tiles than square 2DBC
    assert by["SBC 9x9 (P=36)"]["n_messages"] < by["2DBC 6x6 (P=36)"]["n_messages"]
    # the sqrt(2) story: SBC/2DBC message ratio near (z̄_sbc-1)/(z̄_2dbc-1)
    ratio = by["SBC 9x9 (P=36)"]["n_messages"] / by["2DBC 6x6 (P=36)"]["n_messages"]
    assert ratio == pytest.approx(7 / 10, abs=0.12)
    # closed form tracks exact counts
    for r in result.rows:
        assert r["n_messages"] == pytest.approx(r["q_syrk_pred"], rel=0.30)
