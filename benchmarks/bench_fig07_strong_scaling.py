"""Figure 7 — strong scaling at a fixed matrix size, P ∈ {23, 31, 35, 39}.

Paper shapes:
(a) LU — G-2DBC clearly beats 2DBC when P factors badly (23, 31, 39)
    and matches it when a good grid exists (35 = 7×5).
(b) Cholesky — GCR&M on all P tracks the performance SBC would deliver
    if it existed for every P (it fills the gaps between SBC points).
"""

import pytest

from repro.experiments.figures import fig7a_strong_scaling_lu, fig7b_strong_scaling_cholesky

N_TILES = 48


@pytest.mark.benchmark(group="fig07")
def test_fig7a_lu_strong_scaling(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig7a_strong_scaling_lu(n_tiles=N_TILES), rounds=1, iterations=1
    )
    save_result(result, "fig07a_strong_scaling_lu")

    def total(P, prefix):
        return next(r["gflops"] for r in result.rows
                    if r["P"] == P and r["label"].startswith(prefix))

    # awkward P: G-2DBC wins clearly
    for P in (23, 31, 39):
        assert total(P, "G-2DBC") > 1.02 * total(P, "2DBC"), P
    # P=35 has a decent 7x5 grid: roughly the same performance
    assert total(35, "G-2DBC") == pytest.approx(total(35, "2DBC"), rel=0.10)


@pytest.mark.benchmark(group="fig07")
def test_fig7b_cholesky_strong_scaling(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig7b_strong_scaling_cholesky(n_tiles=N_TILES, seeds=range(10)),
        rounds=1,
        iterations=1,
    )
    save_result(result, "fig07b_strong_scaling_cholesky")

    for P in (23, 31, 35, 39):
        rows = [r for r in result.rows if f"P={P}" in r["label"] or r["P"] <= P]
        gcrm_total = next(r["gflops"] for r in result.rows if r["label"] == f"GCR&M (P={P})")
        sbc_total = next(r["gflops"] for r in result.rows
                         if r["label"].startswith("SBC") and r["P"] <= P
                         and abs(r["P"] - P) <= 4)
        # GCR&M uses all nodes: total throughput at or above the SBC baseline
        assert gcrm_total >= 0.95 * sbc_total, P
