"""Figure 1 — LU with 2DBC grids of different shapes (P = 20…23).

Paper shape to reproduce: per-node GFlop/s improves as the grid gets
squarer (5×4 best, 23×1 worst), while total GFlop/s stays similar
because squarer grids use fewer nodes — the motivation for G-2DBC.
"""

import pytest

from repro.experiments.figures import fig1_2dbc_shapes

SIZES = (32, 48, 64)


@pytest.mark.benchmark(group="fig01")
def test_fig1_2dbc_shapes(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig1_2dbc_shapes(n_tiles_list=SIZES), rounds=1, iterations=1
    )
    save_result(result, "fig01_2dbc_shapes")

    last = SIZES[-1]
    per_node = {r["label"]: r["gflops_per_node"] for r in result.rows if r["n_tiles"] == last}
    total = {r["label"]: r["gflops"] for r in result.rows if r["n_tiles"] == last}
    # per-node performance ordering: squarer grid -> faster per node
    assert per_node["2DBC 5x4 (P=20)"] > per_node["2DBC 11x2 (P=22)"]
    assert per_node["2DBC 7x3 (P=21)"] > per_node["2DBC 23x1 (P=23)"]
    # total performance: all within a modest band (no clear winner)
    vals = list(total.values())
    assert max(vals) / min(vals) < 1.5
