"""Model-validation bench: Equations 1–2 vs exact tile-level counts.

Not a paper figure per se, but the quantitative backbone of Section
III: the closed forms must track the exact per-run message counts with
an O(pattern/matrix) edge-effect error.
"""

import pytest

from repro.cost.exact import count_cholesky_messages, count_lu_messages
from repro.cost.metrics import q_cholesky, q_lu
from repro.distribution import TileDistribution
from repro.experiments.figures import FigureResult
from repro.patterns.bc2d import bc2d
from repro.patterns.g2dbc import g2dbc
from repro.patterns.sbc import sbc


@pytest.mark.benchmark(group="comm-model")
def test_eq1_vs_exact_lu(benchmark, save_result):
    def run():
        rows = []
        for pat in (bc2d(5, 4), bc2d(23, 1), g2dbc(23), g2dbc(39)):
            for n in (32, 64, 96):
                cc = count_lu_messages(TileDistribution(pat, n))
                q = q_lu(pat, n)
                rows.append({"pattern": pat.name, "n_tiles": n,
                             "exact_trsm": cc.exact_trsm if hasattr(cc, "exact_trsm") else cc.trsm,
                             "eq1": q, "rel_err": abs(q - cc.trsm) / q})
        return FigureResult("Model check", "Equation 1 vs exact LU message counts", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "comm_model_lu")
    for name in {r["pattern"] for r in result.rows}:
        errs = [r["rel_err"] for r in result.rows if r["pattern"] == name]
        assert errs[-1] <= errs[0] + 0.02  # error shrinks (or stays tiny)
        assert errs[-1] < 0.25


@pytest.mark.benchmark(group="comm-model")
def test_eq2_vs_exact_cholesky(benchmark, save_result):
    def run():
        rows = []
        for pat in (sbc(21), sbc(32), bc2d(6, 6)):
            for n in (32, 64, 96):
                cc = count_cholesky_messages(TileDistribution(pat, n, symmetric=True))
                q = q_cholesky(pat, n)
                rows.append({"pattern": pat.name, "n_tiles": n,
                             "exact_trsm": cc.trsm, "eq2": q,
                             "rel_err": abs(q - cc.trsm) / q})
        return FigureResult("Model check", "Equation 2 vs exact Cholesky message counts", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "comm_model_cholesky")
    for name in {r["pattern"] for r in result.rows}:
        errs = [r["rel_err"] for r in result.rows if r["pattern"] == name]
        assert errs[-1] <= errs[0] + 0.02
        assert errs[-1] < 0.25
