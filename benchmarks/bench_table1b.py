"""Table Ib — dimensions and costs of the Cholesky evaluation patterns.

SBC column is exact (construction-determined); GCR&M values are the
best of a randomized search, so they are asserted as bands around the
paper's numbers (6.045 / 7.065 / 7.4 for P = 23 / 31 / 35).
"""

import pytest

from repro.experiments.figures import table1b_cholesky_patterns


@pytest.mark.benchmark(group="table1b")
def test_table1b(benchmark, save_result, bench_jobs):
    result = benchmark.pedantic(
        lambda: table1b_cholesky_patterns(seeds=range(40), max_factor=5.0,
                                          jobs=bench_jobs),
        rounds=1,
        iterations=1,
    )
    save_result(result, "table1b_cholesky_patterns")

    by_p = {r["P"]: r for r in result.rows}
    # SBC entries (exact)
    assert by_p[21]["sbc_dim"] == "7x7" and by_p[21]["sbc_T"] == 6
    assert by_p[28]["sbc_dim"] == "8x8" and by_p[28]["sbc_T"] == 7
    assert by_p[32]["sbc_dim"] == "8x8" and by_p[32]["sbc_T"] == 8
    assert by_p[36]["sbc_dim"] == "9x9" and by_p[36]["sbc_T"] == 8
    # SBC fallbacks within P (the paper's baselines)
    assert "P'=21" in by_p[23]["sbc_dim"]
    assert "P'=28" in by_p[31]["sbc_dim"]
    assert "P'=32" in by_p[35]["sbc_dim"]
    assert "P'=36" in by_p[39]["sbc_dim"]
    # GCR&M entries — paper: 6.045 (P=23), 7.065 (P=31), 7.4 (P=35)
    assert by_p[23]["gcrm_T"] <= 6.6
    assert by_p[31]["gcrm_T"] <= 7.8
    assert by_p[35]["gcrm_T"] <= 8.1
    assert by_p[39]["gcrm_T"] <= 8.6
