"""Extension (paper conclusion): heterogeneous nodes.

Compares the homogeneous G-2DBC against the speed-weighted
``heterogeneous_g2dbc`` on clusters with skewed node speeds.  Expected
shape: the weighted pattern's makespan advantage grows with the skew,
because the homogeneous pattern leaves fast nodes idle.
"""

import pytest

from repro.distribution import TileDistribution
from repro.dla.lu import build_lu_graph
from repro.experiments.figures import FigureResult
from repro.patterns.g2dbc import g2dbc
from repro.patterns.heterogeneous import heterogeneous_g2dbc, weighted_imbalance
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simulator import simulate


def run_case(speeds, n_tiles=24, tile_size=200):
    cl = ClusterSpec(nnodes=len(speeds), cores_per_node=4, core_gflops=10.0,
                     bandwidth_Bps=3e9, latency_s=5e-6, tile_size=tile_size,
                     node_speeds=tuple(speeds))
    out = {}
    for label, pat in (("uniform", g2dbc(len(speeds))),
                       ("weighted", heterogeneous_g2dbc(speeds))):
        dist = TileDistribution(pat, n_tiles)
        graph, home = build_lu_graph(dist, tile_size)
        trace = simulate(graph, cl, data_home=home)
        out[label] = (trace.makespan, weighted_imbalance(pat, speeds))
    return out


@pytest.mark.benchmark(group="ext-hetero")
def test_heterogeneous_lu(benchmark, save_result):
    def run():
        rows = []
        cases = {
            "balanced 8x1.0": [1.0] * 8,
            "2 fast (2x) of 8": [2.0, 2.0] + [1.0] * 6,
            "half fast (3x) of 8": [3.0] * 4 + [1.0] * 4,
            "one gpu-ish (4x) of 7": [4.0] + [1.0] * 6,
        }
        for label, speeds in cases.items():
            res = run_case(speeds)
            rows.append({
                "cluster": label,
                "uniform_makespan": res["uniform"][0],
                "weighted_makespan": res["weighted"][0],
                "speedup": res["uniform"][0] / res["weighted"][0],
                "uniform_imbalance": res["uniform"][1],
                "weighted_imbalance": res["weighted"][1],
            })
        return FigureResult("Extension", "heterogeneous nodes: uniform vs weighted G-2DBC", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_heterogeneous")

    by = {r["cluster"]: r for r in result.rows}
    # homogeneous case: both patterns identical in makespan (same grid)
    assert by["balanced 8x1.0"]["speedup"] == pytest.approx(1.0, abs=0.05)
    # skewed cases: weighted pattern wins, more skew -> more win
    assert by["half fast (3x) of 8"]["speedup"] > 1.1
    assert by["one gpu-ish (4x) of 7"]["speedup"] > 1.05
    # and its load is proportional to speed while uniform's is not
    assert by["half fast (3x) of 8"]["weighted_imbalance"] < \
        by["half fast (3x) of 8"]["uniform_imbalance"]
