"""Figure 4 — communication cost T of G-2DBC vs the best 2DBC over P.

Paper shape: G-2DBC hugs the 2√P curve for every P, while the best
2DBC shows large spikes at primes / badly factorable P.
"""

import math

import pytest

from repro.experiments.figures import fig4_g2dbc_cost

P_RANGE = range(2, 121)


@pytest.mark.benchmark(group="fig04")
def test_fig4_g2dbc_cost(benchmark, save_result):
    result = benchmark.pedantic(lambda: fig4_g2dbc_cost(P_RANGE), rounds=1, iterations=1)
    save_result(result, "fig04_g2dbc_cost")

    for row in result.rows:
        # G-2DBC stays within 2/sqrt(P) of the 2*sqrt(P) reference (Lemma 2)
        assert row["g2dbc"] <= row["two_sqrt_P"] + 2 / math.sqrt(row["P"]) + 1e-9
        # and never exceeds the best 2DBC
        assert row["g2dbc"] <= row["best_2dbc"] + 1e-9

    # 2DBC spikes at primes: cost P+1; G-2DBC does not
    primes = [r for r in result.rows if r["best_2dbc"] == r["P"] + 1]
    assert len(primes) >= 20
    assert all(r["g2dbc"] < 0.56 * r["best_2dbc"] for r in primes if r["P"] > 12)
