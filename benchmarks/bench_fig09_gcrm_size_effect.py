"""Figure 9 — effect of pattern size and random seed on GCR&M (P = 23).

Paper shape: the best pattern size is not trivial to predict (larger is
not always better) and random tie-breaking spreads the cost noticeably
at a fixed size.
"""

import pytest

from repro.experiments.figures import fig9_gcrm_size_effect


@pytest.mark.benchmark(group="fig09")
def test_fig9_gcrm_size_effect(benchmark, save_result, bench_jobs):
    result = benchmark.pedantic(
        lambda: fig9_gcrm_size_effect(P=23, seeds=range(25), max_factor=6.0,
                                      jobs=bench_jobs),
        rounds=1,
        iterations=1,
    )
    save_result(result, "fig09_gcrm_size_effect")

    rows = result.rows
    assert len(rows) >= 8
    # seed spread exists at some size (random choices matter)
    assert any(r["max_cost"] - r["min_cost"] >= 0.2 for r in rows)
    # non-monotone in r: a larger pattern is not always better
    mins = [r["min_cost"] for r in rows]
    assert any(mins[i] < mins[i + 1] for i in range(len(mins) - 1))
    # the best size over the sweep lands in the paper's cost region
    assert min(mins) <= 6.6
