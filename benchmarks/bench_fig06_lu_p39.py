"""Figure 6 — LU using at most P = 39 nodes.

Paper shape: G-2DBC(39) consistently achieves the highest throughput;
2DBC 13×3 on all 39 nodes is hindered by its rectangular pattern and
loses even to the square 6×6 on 36 nodes.
"""

import pytest

from repro.experiments.figures import fig6_lu_p39

SIZES = (32, 48, 64)


@pytest.mark.benchmark(group="fig06")
def test_fig6_lu_p39(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig6_lu_p39(n_tiles_list=SIZES), rounds=1, iterations=1
    )
    save_result(result, "fig06_lu_p39")

    for n in SIZES:
        total = {r["label"]: r["gflops"] for r in result.rows if r["n_tiles"] == n}
        assert total["G-2DBC (P=39)"] > total["2DBC 13x3 (P=39)"], n
        assert total["G-2DBC (P=39)"] > total["2DBC 6x6 (P=36)"], n

    last = SIZES[-1]
    per_node = {r["label"]: r["gflops_per_node"] for r in result.rows if r["n_tiles"] == last}
    # G-2DBC reaches close to the 6x6 per-node efficiency with ~10% more nodes
    assert per_node["G-2DBC (P=39)"] >= 0.85 * per_node["2DBC 6x6 (P=36)"]
