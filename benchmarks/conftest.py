"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and saves
its rendered rows under ``benchmarks/results/`` (printed output is also
emitted; run pytest with ``-s`` to see it live).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker processes for GCR&M search sweeps inside the benchmarks.
#: Results are jobs-independent (see repro.patterns.search), so this
#: only changes wall-clock time; 0 = auto-select from the CPU count.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def bench_jobs() -> int:
    """GCR&M search parallelism for benchmarks (REPRO_BENCH_JOBS env var)."""
    return BENCH_JOBS


@pytest.fixture
def save_result():
    """Persist a FigureResult's rendering next to the benchmarks."""

    def _save(result, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
