"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and saves
its rendered rows under ``benchmarks/results/`` (printed output is also
emitted; run pytest with ``-s`` to see it live).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a FigureResult's rendering next to the benchmarks."""

    def _save(result, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
