"""Extension (open question §VI, answered for P = r(r−1)/6):
explicit Steiner-triple-system patterns at the √(3P/2) floor.

Head-to-head on the paper's P=35 Cholesky case: STS(15) (T=7, exact)
vs the paper's GCR&M search (T≈7.4) vs the SBC fallback on 32 nodes
(T=8) — both the cost metric and the simulated run.
"""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.harness import sweep
from repro.patterns.gcrm import gcrm_cost_floor, gcrm_search
from repro.patterns.sbc import sbc
from repro.patterns.sts import sts_node_counts, sts_pattern


@pytest.mark.benchmark(group="ext-sts")
def test_sts_cost_floor(benchmark, save_result):
    def run():
        rows = []
        for P, r in sorted(sts_node_counts(27).items()):
            pat = sts_pattern(r)
            rows.append({
                "P": P,
                "r": r,
                "sts_T": pat.cost_cholesky,
                "floor_sqrt_3P_2": gcrm_cost_floor(P),
                "gcrm_T": gcrm_search(P, seeds=range(10), max_factor=3.0).cost
                if P <= 70 else float("nan"),
            })
        return FigureResult("Extension", "STS explicit patterns vs the GCR&M floor", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_sts_floor")

    for row in result.rows:
        assert row["sts_T"] <= row["floor_sqrt_3P_2"]
        if row["gcrm_T"] == row["gcrm_T"]:  # not nan
            assert row["sts_T"] <= row["gcrm_T"] + 1e-9


@pytest.mark.benchmark(group="ext-sts")
def test_sts_p35_cholesky(benchmark, save_result):
    """Simulated Figure-12 rerun with the STS(15) pattern added."""
    def run():
        patterns = {
            "STS 15x15 (P=35)": sts_pattern(15),
            "GCR&M (P=35)": gcrm_search(35, seeds=range(10), max_factor=3.0).pattern,
            "SBC 8x8 (P=32)": sbc(32),
        }
        rows = [r.as_dict() for r in sweep(patterns, [48, 64], "cholesky")]
        return FigureResult("Extension", "Cholesky P=35 with the explicit STS pattern", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_sts_p35")

    last = {r["label"]: r for r in result.rows if r["n_tiles"] == 64}
    assert last["STS 15x15 (P=35)"]["pattern_cost"] == 7.0
    # lowest communication of the three
    assert last["STS 15x15 (P=35)"]["n_messages"] <= last["GCR&M (P=35)"]["n_messages"]
    assert last["STS 15x15 (P=35)"]["n_messages"] < last["SBC 8x8 (P=32)"]["n_messages"]
    # and at least competitive throughput with the heuristic
    assert last["STS 15x15 (P=35)"]["gflops"] >= 0.95 * last["GCR&M (P=35)"]["gflops"]
