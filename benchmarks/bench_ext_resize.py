"""Extension (elastic resize): COSTA relabeling savings and break-even.

The paper's thesis — good patterns exist for *any* P — makes elastic
resizing attractive: when the allocation changes from P to P′ mid-run,
the best move is to the good P′ pattern.  This benchmark records what
that move costs on the simulated cluster: tiles moved under the
COSTA-style minimal relabeling vs the naive identity relabeling, the
simulated migration makespan, and the break-even horizon (the fraction
of a full run that must still be ahead for the resize to pay off), for
the paper's own scales (P = 23 → 31 grow, P = 35 → 23 shrink) under
both the ``nic`` and ``contention`` network models.
"""

import pytest

from repro.distribution import TileDistribution
from repro.dla.cholesky import build_cholesky_graph
from repro.dla.lu import build_lu_graph
from repro.experiments.figures import FigureResult
from repro.experiments.machine import sim_cluster
from repro.patterns.library import shipped_pattern
from repro.patterns.migrate import plan_migration
from repro.runtime.resize import ResizeEvent, simulate_with_resize

M_TILES = 24      #: matrix size in tiles
TILE = 200        #: tile size (small keeps the replay cheap)
PAIRS = ((23, 31), (35, 23))
KERNELS = ("lu", "cholesky")
NETWORKS = ("nic", "contention")


def _run_one(P, Q, kernel, network):
    src = shipped_pattern(P, kernel)
    tgt = shipped_pattern(Q, kernel)
    symmetric = kernel == "cholesky"
    dist = TileDistribution(src, M_TILES, symmetric=symmetric)
    if kernel == "lu":
        graph, home = build_lu_graph(dist, TILE)
    else:
        graph, home = build_cholesky_graph(dist, TILE)
    cluster = sim_cluster(P, tile_size=TILE)
    plan = plan_migration(src, tgt, M_TILES, symmetric=symmetric,
                          cluster=cluster)
    # resize a third of the way into the unresized run
    t = simulate_with_resize(graph, cluster, None, data_home=home,
                             network=network).makespan / 3.0
    trace = simulate_with_resize(
        graph, cluster, ResizeEvent(time=t, nnodes=Q, target=tgt),
        data_home=home, network=network)
    rs = trace.resize_stats
    return {
        "pair": f"{P}→{Q}",
        "kernel": kernel,
        "network": network,
        "tiles_total": rs.tiles_total,
        "moved_costa": rs.tiles_moved,
        "moved_identity": rs.tiles_moved_identity,
        "saved_%": 100.0 * rs.tiles_saved / max(1, rs.tiles_moved_identity),
        "migration_s": rs.migration_s,
        "predicted_s": plan.predicted_s[network],
        "makespan_P_s": rs.makespan_source_s,
        "makespan_Q_s": rs.makespan_target_s,
        "breakeven": rs.breakeven,
    }


@pytest.mark.benchmark(group="ext-resize")
def test_resize_breakeven(benchmark, save_result):
    def run():
        rows = [_run_one(P, Q, kernel, network)
                for P, Q in PAIRS
                for kernel in KERNELS
                for network in NETWORKS]
        return FigureResult(
            "Extension",
            "elastic resize: COSTA relabeling savings and break-even "
            f"horizon (m={M_TILES}, tile={TILE})",
            rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "resize_breakeven")

    for row in result.rows:
        # the relabeling is exact, so it can never lose to identity
        assert row["moved_costa"] <= row["moved_identity"]
        assert 0 < row["moved_costa"] <= row["tiles_total"]
        assert row["migration_s"] > 0
