"""Extension (Section II-C): task-based async vs synchronized fork-join.

The paper attributes part of the runtime approach's advantage to
"avoid[ing] synchronizations between the different steps of a LU or
Cholesky factorization".  This ablation measures that claim directly:
the same DAG and distribution, with and without a global barrier
between iterations.
"""

import dataclasses

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.harness import run_factorization
from repro.experiments.machine import sim_cluster
from repro.patterns.g2dbc import g2dbc
from repro.patterns.sbc import sbc


@pytest.mark.benchmark(group="ext-forkjoin")
def test_async_vs_fork_join(benchmark, save_result):
    cases = [
        ("LU G-2DBC (P=23)", g2dbc(23), "lu"),
        ("Cholesky SBC (P=28)", sbc(28), "cholesky"),
    ]
    n_tiles = 48

    def run():
        rows = []
        for label, pat, kernel in cases:
            for mode in ("async", "fork-join"):
                cl = dataclasses.replace(sim_cluster(pat.nnodes),
                                         fork_join=(mode == "fork-join"))
                tr = run_factorization(pat, n_tiles, kernel, cluster=cl)
                rows.append({"case": label, "mode": mode,
                             "gflops": tr.gflops, "makespan_s": tr.makespan,
                             "utilization": tr.utilization})
        return FigureResult("Extension", f"async task flow vs fork-join "
                            f"barriers ({n_tiles} tiles)", rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "ext_forkjoin")

    for label, _, _ in cases:
        t = {r["mode"]: r["makespan_s"] for r in result.rows if r["case"] == label}
        # the barrier costs real time — the paper's qualitative claim
        assert t["fork-join"] > 1.1 * t["async"], label
