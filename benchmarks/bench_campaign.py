"""Micro-benchmark — campaign runner scaling and memoization.

Runs a small (family × P × m × network) grid three ways:

* cold, serial (``jobs=1``) — the reference path;
* cold, parallel (``jobs=4``) — the process-pool path;
* warm, serial — the same grid against a populated memo.

Raw 4-worker speedup is only visible on multi-core hosts, so the
assertion is on *parallel efficiency* normalized by the usable cores,
``serial_t / (parallel_t · min(jobs, cpus))`` — near 1.0 means
near-linear scaling up to the available cores (on a 1-CPU container it
degenerates to "pool overhead is bounded", which is the honest claim
that host can support).  The memoized re-run must be essentially free.
Determinism across ``jobs`` is asserted row-for-row.

Measured numbers are recorded in
``benchmarks/results/campaign_speedup.txt``.
"""

import os
import time

import pytest

from repro.experiments.campaign import plan_campaign, run_campaign

from conftest import RESULTS_DIR

WORKERS = 4
FAMILIES = ["g2dbc", "gcrm"]
PS = [5, 7, 9]
MS = [8, 12]
NETWORKS = ["nic", "contention"]
TILE_SIZE = 500


def _timed(cells, jobs, memo=None):
    if memo is None:
        memo = {}
    t0 = time.perf_counter()
    rows = run_campaign(cells, jobs=jobs, tile_size=TILE_SIZE, memo=memo)
    return time.perf_counter() - t0, rows, memo


@pytest.mark.benchmark(group="campaign")
def test_campaign_runner_speedup(benchmark):
    cells = plan_campaign(FAMILIES, Ps=PS, ms=MS, networks=NETWORKS)
    assert len(cells) >= 16

    serial_t, serial_rows, memo = _timed(cells, jobs=1)
    parallel_t, parallel_rows, _ = benchmark.pedantic(
        lambda: _timed(cells, jobs=WORKERS), rounds=1, iterations=1
    )
    warm_t, warm_rows, _ = _timed(cells, jobs=1, memo=memo)

    # determinism: identical rows whatever the worker count / memo state
    assert [r.as_dict() for r in parallel_rows] == [r.as_dict() for r in serial_rows]
    assert [r.as_dict() for r in warm_rows] == [r.as_dict() for r in serial_rows]

    cpus = os.cpu_count() or 1
    efficiency = serial_t / (parallel_t * min(WORKERS, cpus))
    assert efficiency >= 0.4, (
        f"parallel efficiency {efficiency:.2f} below 0.4 "
        f"(serial {serial_t:.2f}s, jobs={WORKERS} {parallel_t:.2f}s, {cpus} CPUs)")
    assert warm_t < serial_t / 10, (
        f"memoized re-run not cheap: {warm_t:.3f}s vs cold {serial_t:.3f}s")

    lines = [
        f"campaign runner micro-benchmark — {len(cells)} cells "
        f"({'+'.join(FAMILIES)}, P={PS}, m={MS}, networks={NETWORKS})",
        f"host: {cpus} CPU(s)",
        "",
        f"{'configuration':<34} {'time [s]':>9}",
        f"{'cold, serial (jobs=1)':<34} {serial_t:>9.3f}",
        f"{f'cold, parallel (jobs={WORKERS})':<34} {parallel_t:>9.3f}",
        f"{'warm, serial (memoized)':<34} {warm_t:>9.3f}",
        "",
        f"parallel efficiency serial/(parallel*min(jobs,cpus)): {efficiency:.2f}",
        f"memo speedup vs cold serial: {serial_t / max(warm_t, 1e-9):.1f}x",
        "rows are jobs-independent and memo-independent (asserted).",
        "on multi-core hosts the efficiency figure is the per-core",
        "scaling of the pool; on 1-CPU containers it bounds pool overhead.",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "campaign_speedup.txt").write_text(text + "\n")
    print()
    print(text)
