"""Figure 3 — the G-2DBC construction example for P = 10.

Also benchmarks pattern-construction throughput (the paper notes
patterns are computed once and for all, in seconds on a laptop)."""

import pytest

from repro.experiments.figures import FigureResult
from repro.patterns.g2dbc import g2dbc, g2dbc_params, incomplete_pattern


@pytest.mark.benchmark(group="fig03")
def test_fig3_g2dbc_example(benchmark, save_result):
    pattern = benchmark(g2dbc, 10)

    a, b, c = g2dbc_params(10)
    assert (a, b, c) == (4, 3, 2)
    assert pattern.shape == (6, 10)
    ip = incomplete_pattern(10)
    assert ip[2].tolist() == [8, 9, -1, -1]

    rows = [{"what": "IP", "text": " / ".join(" ".join(map(str, r)) for r in ip.tolist())},
            {"what": "G-2DBC", "text": " / ".join(" ".join(map(str, r)) for r in pattern.grid.tolist())}]
    save_result(FigureResult("Figure 3", "G-2DBC pattern for P=10 (a=4, b=3, c=2)", rows),
                "fig03_pattern_example")


@pytest.mark.benchmark(group="fig03")
def test_g2dbc_construction_speed_large_p(benchmark):
    """Constructing a pattern even for hundreds of nodes is instant."""
    pattern = benchmark(g2dbc, 500)
    assert pattern.is_balanced
