"""Micro-benchmark — serial vs parallel GCR&M search at P = 35.

Compares the legacy exhaustive sweep (``jobs=1, prune=False``, the exact
pre-engine behavior) against the search engine (``jobs=4`` workers plus
floor pruning) on the paper's Figure 12 case.  Also cross-checks the
engine's determinism guarantee: the pruned search returns bit-identical
winners for ``jobs=1`` and ``jobs=4``.

The measured speedup is recorded in
``benchmarks/results/search_engine_speedup.txt`` together with the host
CPU count — pruning dominates on small containers, process parallelism
adds on top once real cores are available.
"""

import os
import time

import pytest

from repro.cost.cache import COST_CACHE
from repro.patterns.gcrm import gcrm_cost_floor, gcrm_search

from conftest import RESULTS_DIR

P = 35
SEEDS = range(25)
MAX_FACTOR = 6.0
WORKERS = 4


def _timed(**kw):
    COST_CACHE.clear()  # measure cold-cache cost evaluation each time
    t0 = time.perf_counter()
    res = gcrm_search(P, seeds=SEEDS, max_factor=MAX_FACTOR, **kw)
    return time.perf_counter() - t0, res


@pytest.mark.benchmark(group="search_engine")
def test_search_engine_speedup(benchmark):
    serial_t, serial = _timed(jobs=1, prune=False)
    engine_t, engine = benchmark.pedantic(
        lambda: _timed(jobs=WORKERS, prune=True), rounds=1, iterations=1
    )
    pruned1_t, pruned1 = _timed(jobs=1, prune=True)

    # determinism: the engine is jobs-independent
    assert engine.cost == pruned1.cost
    assert engine.pattern == pruned1.pattern
    # pruning only stops inside the tolerance band above the floor
    assert engine.cost <= gcrm_cost_floor(P) * 1.05 + 1e-9
    speedup = serial_t / engine_t
    assert speedup >= 2.0, f"engine speedup {speedup:.2f}x below 2x"

    lines = [
        f"GCR&M search engine micro-benchmark — P={P}, "
        f"seeds={len(list(SEEDS))}, max_factor={MAX_FACTOR}",
        f"host: {os.cpu_count()} CPU(s)",
        "",
        f"{'configuration':<38} {'time [s]':>9} {'best T':>8} {'tasks':>6}",
        f"{'legacy serial (jobs=1, no prune)':<38} {serial_t:>9.3f} "
        f"{serial.cost:>8.4f} {serial.report.n_tasks_evaluated:>6d}",
        f"{'engine (jobs=4, prune)':<38} {engine_t:>9.3f} "
        f"{engine.cost:>8.4f} {engine.report.n_tasks_evaluated:>6d}",
        f"{'engine (jobs=1, prune)':<38} {pruned1_t:>9.3f} "
        f"{pruned1.cost:>8.4f} {pruned1.report.n_tasks_evaluated:>6d}",
        "",
        f"speedup engine(jobs={WORKERS}) vs legacy: {speedup:.2f}x",
        f"sizes evaluated: {engine.report.sizes_evaluated}",
        f"sizes pruned:    {engine.report.sizes_pruned}",
        "pruned winner may differ from the exhaustive one by design: the",
        "search stops once the best is within 5% of the sqrt(3P/2) floor.",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "search_engine_speedup.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.mark.benchmark(group="search_engine")
def test_delta_eval_speedup(benchmark):
    """Full re-costing vs incremental delta evaluation at P = 35.

    Both runs are exhaustive (``jobs=1, prune=False``) so the winners
    are directly comparable; the delta path must return the bit-identical
    winner at >= 3x the speed.  Recorded in
    ``benchmarks/results/delta_eval_speedup.txt``.
    """
    kw = dict(jobs=1, prune=False, seed=1234)

    def _run(delta):
        COST_CACHE.clear()
        t0 = time.perf_counter()
        res = gcrm_search(P, seeds=SEEDS, max_factor=MAX_FACTOR,
                          delta=delta, **kw)
        return time.perf_counter() - t0, res

    _run(True)  # warm imports/allocator before timing
    full_t, full = _run(False)
    delta_t, delta_res = benchmark.pedantic(
        lambda: _run(True), rounds=1, iterations=1)

    # byte-identical winners: same cost float, same grid bytes
    assert delta_res.cost == full.cost
    assert delta_res.pattern == full.pattern
    assert delta_res.pattern.grid.tobytes() == full.pattern.grid.tobytes()
    assert delta_res.report.n_tasks_evaluated == full.report.n_tasks_evaluated

    speedup = full_t / delta_t
    assert speedup >= 3.0, f"delta speedup {speedup:.2f}x below 3x"

    lines = [
        f"GCR&M delta-evaluation micro-benchmark — P={P}, "
        f"seeds={len(list(SEEDS))}, max_factor={MAX_FACTOR}, "
        f"jobs=1, prune=False",
        f"host: {os.cpu_count()} CPU(s)",
        "",
        f"{'evaluator':<38} {'time [s]':>9} {'best T':>8} {'tasks':>6}",
        f"{'full re-costing (delta=False)':<38} {full_t:>9.3f} "
        f"{full.cost:>8.4f} {full.report.n_tasks_evaluated:>6d}",
        f"{'incremental delta (delta=True)':<38} {delta_t:>9.3f} "
        f"{delta_res.cost:>8.4f} {delta_res.report.n_tasks_evaluated:>6d}",
        "",
        f"speedup delta vs full: {speedup:.2f}x",
        "winners are byte-identical (same RNG stream, same matching, same",
        "cost floats) — pinned by tests/patterns/test_delta_eval.py.",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "delta_eval_speedup.txt").write_text(text + "\n")
    print()
    print(text)
