"""Figure 5 — LU using at most P = 23 nodes.

Paper shape: G-2DBC(23) achieves the highest total GFlop/s at every
matrix size; 2DBC 23×1 suffers from its pattern shape; G-2DBC's
per-node efficiency is comparable to 2DBC 7×3 on 21 nodes.
"""

import pytest

from repro.experiments.figures import fig5_lu_p23

SIZES = (32, 48, 64)


@pytest.mark.benchmark(group="fig05")
def test_fig5_lu_p23(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: fig5_lu_p23(n_tiles_list=SIZES), rounds=1, iterations=1
    )
    save_result(result, "fig05_lu_p23")

    for n in SIZES:
        total = {r["label"]: r["gflops"] for r in result.rows if r["n_tiles"] == n}
        assert total["G-2DBC (P=23)"] > total["2DBC 23x1 (P=23)"], n
        assert total["G-2DBC (P=23)"] > total["2DBC 4x4 (P=16)"], n
        # at the smallest size 7x3 can edge ahead in the simulation;
        # the paper's measured gap at small m is similarly narrow
        assert total["G-2DBC (P=23)"] >= 0.95 * total["2DBC 7x3 (P=21)"], n

    last = SIZES[-1]
    per_node = {r["label"]: r["gflops_per_node"] for r in result.rows if r["n_tiles"] == last}
    # per-node efficiency comparable to the 7x3 pattern on 21 nodes
    assert per_node["G-2DBC (P=23)"] >= 0.9 * per_node["2DBC 7x3 (P=21)"]
