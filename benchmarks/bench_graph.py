"""Micro-benchmark — columnar task-graph core vs the object path.

Times the full ``build + simulate`` pipeline (LU, P = 12, ``nic``
network) at m ∈ {16, 32, 64} tiles for both implementations, live on
the same machine:

* **legacy**: the frozen pre-refactor stack — per-tile-submit builder
  (:func:`repro.runtime.objgraph.build_lu_graph_reference`) feeding the
  object-walking event loop
  (:func:`repro.runtime.objsim.simulate_reference`);
* **columnar**: the vectorized batch builder
  (:func:`repro.dla.lu.build_lu_graph`) feeding the array hot path
  (:func:`repro.runtime.simulator.simulate`).

Both are also cross-checked to produce the *same* makespan and message
count — the speedup is measured on provably identical schedules.  The
measured ratios are recorded in
``benchmarks/results/graph_speedup.txt``.
"""

import os
import time

import pytest

from repro.distribution import TileDistribution
from repro.dla.lu import build_lu_graph, lu_task_count
from repro.patterns.g2dbc import g2dbc
from repro.runtime.cluster import ClusterSpec
from repro.runtime.objgraph import build_lu_graph_reference
from repro.runtime.objsim import simulate_reference
from repro.runtime.simulator import simulate

from conftest import RESULTS_DIR

P = 12
SIZES = (16, 32, 64)
TILE = 8
#: minimum accepted end-to-end speedup at m = 64 (conservative CI gate;
#: the recorded result on the reference host is well above it)
MIN_SPEEDUP = 3.0


def _cluster():
    return ClusterSpec(nnodes=P, cores_per_node=2, core_gflops=1.0,
                       bandwidth_Bps=1e9, latency_s=1e-6, tile_size=TILE)


def _time_pipeline(build, sim, dist, cluster, rounds):
    """Best-of-``rounds`` (build time, simulate time) plus the trace."""
    best_b = best_s = float("inf")
    trace = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        graph, home = build(dist, TILE)
        t1 = time.perf_counter()
        trace = sim(graph, cluster, data_home=home, network="nic")
        t2 = time.perf_counter()
        best_b = min(best_b, t1 - t0)
        best_s = min(best_s, t2 - t1)
    return best_b, best_s, trace


@pytest.mark.benchmark(group="graph_core")
def test_columnar_graph_speedup(benchmark):
    cluster = _cluster()
    rows = []
    speedup_m64 = None
    for m in SIZES:
        dist = TileDistribution(g2dbc(P), m)
        rounds = 3 if m < 64 else 2
        lb, ls, lt = _time_pipeline(
            build_lu_graph_reference, simulate_reference, dist, cluster, rounds)
        if m == 64:
            cb, cs, ct = benchmark.pedantic(
                lambda d=dist: _time_pipeline(
                    build_lu_graph, simulate, d, cluster, 3),
                rounds=1, iterations=1)
        else:
            cb, cs, ct = _time_pipeline(build_lu_graph, simulate, dist,
                                        cluster, 3)

        # identical schedules: the speedup is not bought with drift
        assert ct.makespan == lt.makespan
        assert ct.n_messages == lt.n_messages
        assert ct.n_tasks == lt.n_tasks == lu_task_count(m)

        ratio = (lb + ls) / (cb + cs)
        if m == 64:
            speedup_m64 = ratio
        rows.append((m, lu_task_count(m), lb, ls, cb, cs, ratio))

    assert speedup_m64 >= MIN_SPEEDUP, (
        f"m=64 end-to-end speedup {speedup_m64:.2f}x below {MIN_SPEEDUP}x")

    lines = [
        f"Columnar task-graph core micro-benchmark — LU, P={P}, "
        f"network=nic, tile={TILE}",
        f"host: {os.cpu_count()} CPU(s)",
        "legacy = object builder + object event loop (frozen pre-refactor "
        "stack, run live);",
        "columnar = vectorized batch builder + array hot path.  Both "
        "produce identical traces.",
        "",
        f"{'m':>4} {'tasks':>7} {'legacy build':>13} {'legacy sim':>11} "
        f"{'col build':>10} {'col sim':>8} {'speedup':>8}",
    ]
    for m, ntasks, lb, ls, cb, cs, ratio in rows:
        lines.append(
            f"{m:>4} {ntasks:>7} {lb:>12.4f}s {ls:>10.4f}s "
            f"{cb:>9.4f}s {cs:>7.4f}s {ratio:>7.2f}x")
    lines += [
        "",
        f"end-to-end build+simulate speedup at m=64: {speedup_m64:.2f}x "
        f"(gate: >= {MIN_SPEEDUP:.0f}x)",
        "pre-refactor baseline recorded at commit 84890d1 on the "
        "reference host: 1.3942s total",
        "(build 0.5271s + simulate 0.8670s) for the m=64 case above.",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "graph_speedup.txt").write_text(text + "\n")
    print()
    print(text)
