"""Extension (two-level topology): hierarchy-aware GCR&M vs flat GCR&M.

The paper's cost model treats all P ranks as peers on a flat network.
When ranks are packed ``ranks_per_node`` to a machine, only messages
that cross a machine boundary pay inter-node bandwidth.  This benchmark
quantifies what the hierarchy-aware search variant buys: the predicted
*inter-node* communication volume (Equations 1–2 replayed on the
node-mapped grid) and the simulated makespan under the two-level
``"hierarchical"`` network model — at **identical rank-level load
balance** (the refinement only permutes and exchanges equal-load
colrow assignments).
"""

import pytest

from repro.cost.metrics import inter_node_volume
from repro.experiments.figures import FigureResult
from repro.experiments.harness import run_factorization
from repro.patterns.gcrm import gcrm_hier, gcrm_search
from repro.runtime.topology import Topology

M_TILES = 32      #: matrix size (tiles) for the volume predictions
M_SIM = 16        #: smaller size for the simulated-makespan column
SEEDS = range(12)


@pytest.mark.benchmark(group="ext-hier")
def test_hier_gcrm_inter_volume(benchmark, save_result, bench_jobs):
    def run():
        rows = []
        for P in (23, 35):
            res = gcrm_search(P, seeds=SEEDS, jobs=bench_jobs)
            flat = res.pattern
            for rpn in (2, 4):
                topo = Topology(nranks=P, ranks_per_node=rpn)
                # hierarchy-aware refinement of the *same* winning
                # construction: loads are preserved cell-for-cell, so
                # the volume comparison is at exactly equal balance
                hier = gcrm_hier(P, flat.nrows, topo,
                                 seed=res.seed).pattern
                v_flat = inter_node_volume(flat, M_TILES, "cholesky", topo)
                v_hier = inter_node_volume(hier, M_TILES, "cholesky", topo)
                t_flat = run_factorization(flat, M_SIM, "cholesky",
                                           ranks_per_node=rpn)
                t_hier = run_factorization(hier, M_SIM, "cholesky",
                                           ranks_per_node=rpn)
                rows.append({
                    "P": P,
                    "rpn": rpn,
                    "imbal_flat": flat.load_imbalance(),
                    "imbal_hier": hier.load_imbalance(),
                    "inter_vol_flat": v_flat,
                    "inter_vol_hier": v_hier,
                    "vol_change_%": 100.0 * (v_hier - v_flat) / v_flat,
                    "sim_s_flat": t_flat.makespan,
                    "sim_s_hier": t_hier.makespan,
                })
        return FigureResult(
            "Extension",
            "hierarchy-aware GCR&M: inter-node volume and makespan "
            f"(m={M_TILES} volumes, m={M_SIM} simulation)",
            rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result, "hier_volume")

    for row in result.rows:
        # load balance is never traded away...
        assert row["imbal_hier"] == row["imbal_flat"]
        # ...and the hierarchical objective must not lose inter-node
        # volume ground to the flat winner on any recorded point
        assert row["inter_vol_hier"] <= row["inter_vol_flat"] + 1e-9
